package replica

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"ajdloss/internal/service"
)

// routerTransport is the shared transport behind every default router
// client. http.DefaultTransport keeps only 2 idle connections per host —
// with every proxied request going to one of a handful of node URLs, the
// router would churn through TCP (and ephemeral ports) under any real
// concurrency, paying a fresh handshake on most hops. Sized idle pools make
// the steady state one persistent connection set per node, which roughly
// halves proxied-hop latency under parallel load (see EXPERIMENTS.md).
var routerTransport = &http.Transport{
	Proxy: http.ProxyFromEnvironment,
	DialContext: (&net.Dialer{
		Timeout:   5 * time.Second,
		KeepAlive: 30 * time.Second,
	}).DialContext,
	ForceAttemptHTTP2:   true,
	MaxIdleConns:        256,
	MaxIdleConnsPerHost: 64,
	IdleConnTimeout:     90 * time.Second,
	TLSHandshakeTimeout: 10 * time.Second,
}

// RouterOptions configure a Router; the zero value is usable.
type RouterOptions struct {
	// Vnodes per node on the hash ring; 0 means the default (128).
	Vnodes int
	// Client used against the nodes; default a client with a 60s timeout.
	Client *http.Client
}

// Router is a thin routing tier over a set of ajdlossd nodes: every
// {namespace}/{dataset} key lives on the node the consistent-hash ring
// assigns it, single-dataset requests are proxied there, and multi-dataset
// batches (POST /v1/{ns}/batch with a "datasets" array) fan out per dataset
// and merge. Reads fail over along the ring — and so reach a follower
// mirroring the owner — while writes answered with a follower's 421 are
// retried once against the primary the response names.
type Router struct {
	ring   *Ring
	client *http.Client
}

// NewRouter builds a router over the given node base URLs.
func NewRouter(nodes []string, opts RouterOptions) *Router {
	client := opts.Client
	if client == nil {
		client = &http.Client{Timeout: 60 * time.Second, Transport: routerTransport}
	}
	return &Router{ring: NewRing(nodes, opts.Vnodes), client: client}
}

// Ring exposes the router's hash ring (the daemon logs the node set at boot).
func (rt *Router) Ring() *Ring { return rt.ring }

// Handler returns the router's HTTP surface. It mirrors the node API:
// dataset-keyed routes are proxied to the owning node, GET /v1/{ns}/datasets
// merges the per-node listings, POST /v1/{ns}/batch fans out when the body
// carries a "datasets" array, and everything without a dataset key
// (/healthz, /stats, /v1/namespaces, /v1/schemas, the legacy unversioned
// routes) is served by the first reachable node.
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/{ns}/datasets", rt.handleDatasetList)
	mux.HandleFunc("POST /v1/{ns}/datasets", func(w http.ResponseWriter, r *http.Request) {
		rt.keyed(w, r, r.PathValue("ns"), r.URL.Query().Get("name"), false)
	})
	mux.HandleFunc("/v1/{ns}/datasets/{name}", rt.handleDataset)
	mux.HandleFunc("/v1/{ns}/datasets/{name}/{action}", rt.handleDataset)
	for _, route := range []string{"analyze", "discover", "entropy"} {
		mux.HandleFunc("GET /v1/{ns}/"+route, func(w http.ResponseWriter, r *http.Request) {
			rt.keyed(w, r, r.PathValue("ns"), r.URL.Query().Get("dataset"), true)
		})
	}
	mux.HandleFunc("POST /v1/{ns}/batch", rt.handleBatch)
	mux.HandleFunc("/", rt.handleAny)
	return mux
}

// handleDataset proxies one dataset's routes (schema, append, checkpoint,
// wal, snapshot, DELETE) to its owner. Only safe methods fail over: an
// append must not be replayed against a second node on a timeout.
func (rt *Router) handleDataset(w http.ResponseWriter, r *http.Request) {
	rt.keyed(w, r, r.PathValue("ns"), r.PathValue("name"), r.Method == http.MethodGet)
}

// keyed proxies the request to the node owning {ns}/{name}.
func (rt *Router) keyed(w http.ResponseWriter, r *http.Request, ns, name string, failover bool) {
	if name == "" {
		// No dataset key (e.g. GET /v1/{ns}/analyze without ?dataset=): any
		// node produces the same validation error a client should see.
		rt.handleAny(w, r)
		return
	}
	body, err := readBody(w, r)
	if err != nil {
		writeRouterError(w, http.StatusBadRequest, err)
		return
	}
	nodes := rt.ring.Successors(ns + "/" + name)
	if !failover {
		nodes = nodes[:1]
	}
	rt.proxy(w, r, body, nodes)
}

// handleAny proxies a keyless route to the first node that answers at all.
func (rt *Router) handleAny(w http.ResponseWriter, r *http.Request) {
	body, err := readBody(w, r)
	if err != nil {
		writeRouterError(w, http.StatusBadRequest, err)
		return
	}
	rt.proxy(w, r, body, rt.ring.Nodes())
}

// proxy forwards the request to the first candidate node that yields a
// usable response. Later candidates are only tried on transport errors or
// 5xx answers — a 4xx is the request's own fault and comes straight back. A
// 421 (the node is a follower) is retried once against the primary the
// response names, so writes routed to a read replica still land.
func (rt *Router) proxy(w http.ResponseWriter, r *http.Request, body []byte, nodes []string) {
	var lastErr error
	for i, node := range nodes {
		resp, err := rt.forward(r, node, body)
		if err != nil {
			lastErr = err
			continue
		}
		if resp.StatusCode >= http.StatusInternalServerError && i+1 < len(nodes) {
			lastErr = fmt.Errorf("node %s answered %s", node, resp.Status)
			resp.Body.Close()
			continue
		}
		if resp.StatusCode == http.StatusMisdirectedRequest {
			if primary := resp.Header.Get("X-Ajdloss-Primary"); primary != "" && primary != node {
				if redirected, err := rt.forward(r, primary, body); err == nil {
					resp.Body.Close()
					resp = redirected
				}
			}
		}
		copyResponse(w, resp)
		return
	}
	writeRouterError(w, http.StatusBadGateway,
		fmt.Errorf("router: no node could serve %s %s: %v", r.Method, r.URL.Path, lastErr))
}

// forward replays the request verbatim against one node.
func (rt *Router) forward(r *http.Request, node string, body []byte) (*http.Response, error) {
	req, err := http.NewRequestWithContext(r.Context(), r.Method, node+r.URL.RequestURI(), bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	if ct := r.Header.Get("Content-Type"); ct != "" {
		req.Header.Set("Content-Type", ct)
	}
	return rt.client.Do(req)
}

// handleDatasetList merges GET /v1/{ns}/datasets across every node: with
// datasets sharded by the ring, no single node knows the whole namespace.
// Nodes without the namespace answer 404 and contribute nothing; only if
// every node lacks it does the router answer 404 itself.
func (rt *Router) handleDatasetList(w http.ResponseWriter, r *http.Request) {
	ns := r.PathValue("ns")
	type nodeResult struct {
		infos []service.Info
		found bool
		err   error
	}
	nodes := rt.ring.Nodes()
	results := make([]nodeResult, len(nodes))
	var wg sync.WaitGroup
	for i, node := range nodes {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := rt.forward(r, node, nil)
			if err != nil {
				results[i].err = err
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode == http.StatusNotFound {
				return
			}
			if resp.StatusCode != http.StatusOK {
				results[i].err = fmt.Errorf("node %s answered %s", node, resp.Status)
				return
			}
			var dl struct {
				Datasets []service.Info `json:"datasets"`
			}
			if err := json.NewDecoder(io.LimitReader(resp.Body, maxTransferBytes)).Decode(&dl); err != nil {
				results[i].err = err
				return
			}
			results[i] = nodeResult{infos: dl.Datasets, found: true}
		}()
	}
	wg.Wait()
	merged := make(map[string]service.Info)
	found := false
	var lastErr error
	for _, res := range results {
		if res.err != nil {
			lastErr = res.err
			continue
		}
		if res.found {
			found = true
			for _, info := range res.infos {
				// A dataset mirrored on several nodes (primary + follower in
				// the ring) lists once, at its freshest generation.
				if prev, ok := merged[info.Name]; !ok || info.Generation > prev.Generation {
					merged[info.Name] = info
				}
			}
		}
	}
	if !found {
		if lastErr != nil {
			writeRouterError(w, http.StatusBadGateway, fmt.Errorf("router: listing %s: %v", ns, lastErr))
			return
		}
		writeRouterError(w, http.StatusNotFound, fmt.Errorf("service: unknown namespace %q", ns))
		return
	}
	infos := make([]service.Info, 0, len(merged))
	for _, info := range merged {
		infos = append(infos, info)
	}
	sort.Slice(infos, func(i, j int) bool { return infos[i].Name < infos[j].Name })
	writeRouterJSON(w, http.StatusOK, struct {
		Namespace string         `json:"namespace"`
		Datasets  []service.Info `json:"datasets"`
	}{ns, infos})
}

// handleBatch routes POST /v1/{ns}/batch. A body with a single "dataset"
// proxies whole to the owner (with read failover — a batch mutates nothing).
// A body with a "datasets" array fans the same queries out to each dataset's
// owner concurrently and merges the per-dataset views, preserving order.
func (rt *Router) handleBatch(w http.ResponseWriter, r *http.Request) {
	ns := r.PathValue("ns")
	body, err := readBody(w, r)
	if err != nil {
		writeRouterError(w, http.StatusBadRequest, err)
		return
	}
	var req struct {
		Dataset  string          `json:"dataset"`
		Datasets []string        `json:"datasets"`
		Queries  json.RawMessage `json:"queries"`
	}
	if err := json.Unmarshal(body, &req); err != nil {
		writeRouterError(w, http.StatusBadRequest, fmt.Errorf("router: parsing batch body: %w", err))
		return
	}
	if len(req.Datasets) == 0 {
		// The body is already drained, so proxy with it directly rather than
		// through keyed (which would re-read an empty r.Body). A body with no
		// dataset at all goes to any node for the schema-validation 400.
		if req.Dataset == "" {
			rt.proxy(w, r, body, rt.ring.Nodes())
			return
		}
		rt.proxy(w, r, body, rt.ring.Successors(ns+"/"+req.Dataset))
		return
	}
	if req.Dataset != "" {
		writeRouterError(w, http.StatusBadRequest, fmt.Errorf(`router: batch body takes "dataset" or "datasets", not both`))
		return
	}
	type part struct {
		status int
		body   []byte
		err    error
	}
	parts := make([]part, len(req.Datasets))
	var wg sync.WaitGroup
	for i, name := range req.Datasets {
		sub, err := json.Marshal(struct {
			Dataset string          `json:"dataset"`
			Queries json.RawMessage `json:"queries"`
		}{name, req.Queries})
		if err != nil {
			writeRouterError(w, http.StatusBadRequest, err)
			return
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			parts[i] = rt.batchOne(r, ns+"/"+name, sub)
		}()
	}
	wg.Wait()
	for i, p := range parts {
		if p.err != nil {
			writeRouterError(w, http.StatusBadGateway,
				fmt.Errorf("router: batch for %q: %v", req.Datasets[i], p.err))
			return
		}
		if p.status != http.StatusOK {
			// Propagate the node's own error (404 unknown dataset, 400 bad
			// query, ...) verbatim: the client sees exactly what a direct
			// request would have seen, prefixed with which dataset failed.
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(p.status)
			_, _ = w.Write(p.body)
			return
		}
	}
	views := make([]json.RawMessage, len(parts))
	for i, p := range parts {
		views[i] = p.body
	}
	writeRouterJSON(w, http.StatusOK, struct {
		Namespace string            `json:"namespace"`
		Batches   []json.RawMessage `json:"batches"`
	}{ns, views})
}

// batchOne posts one single-dataset batch body to the key's owner, failing
// over along the ring (batches are reads).
func (rt *Router) batchOne(r *http.Request, key string, body []byte) (p struct {
	status int
	body   []byte
	err    error
}) {
	for _, node := range rt.ring.Successors(key) {
		req, err := http.NewRequestWithContext(r.Context(), http.MethodPost, node+r.URL.RequestURI(), bytes.NewReader(body))
		if err != nil {
			p.err = err
			return p
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := rt.client.Do(req)
		if err != nil {
			p.err = err
			continue
		}
		data, err := io.ReadAll(io.LimitReader(resp.Body, maxTransferBytes))
		resp.Body.Close()
		if err != nil {
			p.err = err
			continue
		}
		if resp.StatusCode >= http.StatusInternalServerError {
			p.err = fmt.Errorf("node %s answered %s", node, resp.Status)
			continue
		}
		p.status, p.body, p.err = resp.StatusCode, bytes.TrimRight(data, "\n"), nil
		return p
	}
	return p
}

// readBody drains the request body into memory so it can be replayed against
// more than one node.
func readBody(w http.ResponseWriter, r *http.Request) ([]byte, error) {
	if r.Body == nil {
		return nil, nil
	}
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxTransferBytes))
	if err != nil {
		return nil, fmt.Errorf("router: reading request body: %w", err)
	}
	return data, nil
}

// copyResponse relays a node's response verbatim.
func copyResponse(w http.ResponseWriter, resp *http.Response) {
	defer resp.Body.Close()
	for k, vs := range resp.Header {
		if k == "Content-Length" {
			continue // body length may change if a middlebox re-chunks; recompute
		}
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	_, _ = io.Copy(w, resp.Body)
}

func writeRouterJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeRouterError(w http.ResponseWriter, status int, err error) {
	writeRouterJSON(w, status, map[string]string{"error": err.Error()})
}

// routerPathIsV1 reports whether the path belongs to the versioned surface;
// kept for symmetry with the daemon's logging of unrouted legacy traffic.
func routerPathIsV1(path string) bool { return strings.HasPrefix(path, "/v1/") }

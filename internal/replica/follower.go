// Package replica turns single ajdlossd daemons into a cluster: a Follower
// mirrors a primary's datasets by tailing their WALs over HTTP and serves
// read traffic from its own warm snapshots, and a Router consistent-hashes
// {namespace}/{dataset} keys across nodes, proxying single-dataset requests
// and fanning multi-dataset batches out then merging the responses.
//
// Replication protocol (all served by the ordinary /v1 surface):
//
//	GET /v1/{ns}/datasets/{name}/snapshot   the exact current frozen state in
//	                                        checkpoint wire format, plus
//	                                        X-Ajdloss-Generation
//	GET /v1/{ns}/datasets/{name}/wal?from=G raw CRC-framed WAL records with
//	                                        generation > G, plus
//	                                        X-Ajdloss-Max-Generation; 410 Gone
//	                                        with X-Ajdloss-Horizon when the
//	                                        cursor was compacted past
//
// The cursor is a generation, never a byte offset: generations are monotone
// per dataset and survive WAL compaction's file swap. A follower that falls
// behind the compaction horizon re-bootstraps from the snapshot — the 410 is
// the signal — so convergence never depends on the primary retaining history.
package replica

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"time"

	"ajdloss/internal/service"
)

// maxTransferBytes bounds one snapshot or WAL transfer read into memory; it
// matches the service's own upload bound.
const maxTransferBytes = 512 << 20

// FollowerOptions configure a Follower; the zero value is usable.
type FollowerOptions struct {
	// Interval between sync passes in Run; default 500ms.
	Interval time.Duration
	// Client used against the primary; default a client with a 30s timeout.
	Client *http.Client
	// Logf, when set, receives one line per failed sync pass.
	Logf func(format string, args ...any)
}

// Follower mirrors a primary's datasets into a local Service. It is the
// write side of a read replica: the local service should be in follower mode
// (Service.SetPrimary) so ordinary writes 421-redirect to the primary while
// Follower applies the replication stream underneath. Not safe for
// concurrent use — one Follower, one goroutine (Run enforces this).
type Follower struct {
	svc     *service.Service
	primary string
	client  *http.Client
	opts    FollowerOptions

	// known tracks the datasets mirrored so far, so a dataset the primary
	// removed is removed here too on the next pass.
	known map[datasetKey]bool

	// Cumulative stats, published to the service after every pass.
	appliedBatches int64
	appliedRows    int64
	bootstraps     int64
	syncErrors     int64
	lastSync       time.Time
}

type datasetKey struct{ ns, name string }

// NewFollower returns a follower that mirrors the primary at the given base
// URL (e.g. "http://primary:8080") into svc.
func NewFollower(svc *service.Service, primaryURL string, opts FollowerOptions) *Follower {
	if opts.Interval <= 0 {
		opts.Interval = 500 * time.Millisecond
	}
	client := opts.Client
	if client == nil {
		// The poll loop hits the same primary every interval; the shared
		// router transport keeps that connection persistent instead of
		// re-dialing per poll.
		client = &http.Client{Timeout: 30 * time.Second, Transport: routerTransport}
	}
	return &Follower{
		svc:     svc,
		primary: primaryURL,
		client:  client,
		opts:    opts,
		known:   make(map[datasetKey]bool),
	}
}

// Run syncs until the context is cancelled: one pass immediately, then one
// per interval. Pass failures are logged (Logf) and counted in the published
// replication stats, never fatal — a primary restarting mid-pass is normal
// operation, and the next pass picks up from the same cursors.
func (f *Follower) Run(ctx context.Context) error {
	t := time.NewTicker(f.opts.Interval)
	defer t.Stop()
	for {
		if err := f.SyncOnce(ctx); err != nil && f.opts.Logf != nil {
			f.opts.Logf("replica: sync against %s: %v", f.primary, err)
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-t.C:
		}
	}
}

// SyncOnce runs one full sync pass: enumerate the primary's namespaces and
// datasets, bootstrap or tail each one, and mirror removals. Per-dataset
// failures are counted and the pass continues; the first error is returned
// after the pass so callers see that something went wrong.
func (f *Follower) SyncOnce(ctx context.Context) error {
	var nsList struct {
		Default    string   `json:"default"`
		Namespaces []string `json:"namespaces"`
	}
	if err := f.getJSON(ctx, "/v1/namespaces", &nsList); err != nil {
		f.syncErrors++
		f.publish(0, 0)
		return fmt.Errorf("replica: listing namespaces: %w", err)
	}
	var firstErr error
	seen := make(map[datasetKey]bool)
	var behind int64
	datasets := 0
	for _, ns := range nsList.Namespaces {
		if service.ValidateNamespace(ns) != nil {
			continue // not addressable over /v1; nothing to tail
		}
		var dl struct {
			Namespace string         `json:"namespace"`
			Datasets  []service.Info `json:"datasets"`
		}
		if err := f.getJSON(ctx, "/v1/"+url.PathEscape(ns)+"/datasets", &dl); err != nil {
			f.syncErrors++
			if firstErr == nil {
				firstErr = fmt.Errorf("replica: listing %s datasets: %w", ns, err)
			}
			// Do NOT mark this namespace's datasets unseen: a transient listing
			// failure must not cascade into removing every local mirror.
			for k := range f.known {
				if k.ns == ns {
					seen[k] = true
				}
			}
			continue
		}
		for _, info := range dl.Datasets {
			key := datasetKey{ns, info.Name}
			seen[key] = true
			datasets++
			local, err := f.syncDataset(ctx, ns, info.Name)
			if err != nil {
				f.syncErrors++
				if firstErr == nil {
					firstErr = fmt.Errorf("replica: syncing %s/%s: %w", ns, info.Name, err)
				}
				continue
			}
			// The listing's generation may already be stale by now; it still
			// bounds how far behind this pass left us from the primary's view.
			if info.Generation > local {
				behind += info.Generation - local
			}
		}
	}
	for key := range f.known {
		if !seen[key] {
			f.svc.ReplicaRemove(key.ns, key.name)
		}
	}
	f.known = seen
	if firstErr == nil {
		f.lastSync = time.Now()
	}
	f.publish(datasets, behind)
	return firstErr
}

// syncDataset brings one dataset up to the primary's current generation and
// returns the local generation reached. A missing local dataset (or a 410 on
// the WAL fetch) bootstraps from the snapshot; at most one bootstrap per
// call keeps a pathological primary from looping us forever.
func (f *Follower) syncDataset(ctx context.Context, ns, name string) (int64, error) {
	local := int64(0)
	if d, ok := f.svc.Registry().GetIn(ns, name); ok {
		local = d.Generation()
	}
	for attempt := 0; ; attempt++ {
		raw, _, compacted, err := f.fetchWAL(ctx, ns, name, local)
		if err != nil {
			return local, err
		}
		if compacted {
			if attempt > 0 {
				return local, fmt.Errorf("still behind the compaction horizon after re-bootstrap")
			}
			gen, err := f.bootstrap(ctx, ns, name)
			if err != nil {
				return local, err
			}
			local = gen
			continue
		}
		if len(raw) == 0 {
			return local, nil
		}
		rows, gen, err := f.svc.ReplicaApply(ns, name, raw)
		if err != nil {
			return local, err
		}
		f.appliedRows += int64(rows)
		if gen > local {
			f.appliedBatches += gen - local
		}
		return gen, nil
	}
}

// bootstrap fetches the primary's current snapshot of (ns, name) and adopts
// it locally, returning the adopted generation.
func (f *Follower) bootstrap(ctx context.Context, ns, name string) (int64, error) {
	path := "/v1/" + url.PathEscape(ns) + "/datasets/" + url.PathEscape(name) + "/snapshot"
	resp, err := f.get(ctx, path)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, responseError(resp)
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxTransferBytes))
	if err != nil {
		return 0, fmt.Errorf("reading snapshot: %w", err)
	}
	gen, err := f.svc.ReplicaAdopt(ns, name, data)
	if err != nil {
		return 0, err
	}
	f.bootstraps++
	return gen, nil
}

// fetchWAL requests the WAL tail past generation from. compacted reports a
// 410: the cursor lies behind the primary's compaction horizon and the
// caller must re-bootstrap.
func (f *Follower) fetchWAL(ctx context.Context, ns, name string, from int64) (raw []byte, maxGen int64, compacted bool, err error) {
	path := "/v1/" + url.PathEscape(ns) + "/datasets/" + url.PathEscape(name) + "/wal?from=" + strconv.FormatInt(from, 10)
	resp, err := f.get(ctx, path)
	if err != nil {
		return nil, 0, false, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		data, err := io.ReadAll(io.LimitReader(resp.Body, maxTransferBytes))
		if err != nil {
			return nil, 0, false, fmt.Errorf("reading WAL tail: %w", err)
		}
		maxGen, _ = strconv.ParseInt(resp.Header.Get("X-Ajdloss-Max-Generation"), 10, 64)
		return data, maxGen, false, nil
	case http.StatusGone:
		return nil, 0, true, nil
	default:
		return nil, 0, false, responseError(resp)
	}
}

func (f *Follower) get(ctx context.Context, path string) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, f.primary+path, nil)
	if err != nil {
		return nil, err
	}
	return f.client.Do(req)
}

func (f *Follower) getJSON(ctx context.Context, path string, v any) error {
	resp, err := f.get(ctx, path)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return responseError(resp)
	}
	return json.NewDecoder(io.LimitReader(resp.Body, maxTransferBytes)).Decode(v)
}

// publish pushes the follower's replication state into the service's /stats.
func (f *Follower) publish(datasets int, behind int64) {
	v := service.ReplicationView{
		Primary:           f.primary,
		Datasets:          datasets,
		AppliedBatches:    f.appliedBatches,
		AppliedRows:       f.appliedRows,
		Bootstraps:        f.bootstraps,
		BehindGenerations: behind,
		SyncErrors:        f.syncErrors,
	}
	if !f.lastSync.IsZero() {
		v.LastSync = f.lastSync.UTC().Format(time.RFC3339Nano)
		v.LagSeconds = time.Since(f.lastSync).Seconds()
	}
	f.svc.SetReplication(v)
}

// responseError decodes the service's JSON error envelope into a Go error,
// falling back to the raw status when the body is not the envelope.
func responseError(resp *http.Response) error {
	var body struct {
		Error string `json:"error"`
	}
	data, _ := io.ReadAll(io.LimitReader(resp.Body, 8<<10))
	if json.Unmarshal(data, &body) == nil && body.Error != "" {
		return fmt.Errorf("%s: %s", resp.Status, body.Error)
	}
	return fmt.Errorf("unexpected status %s", resp.Status)
}

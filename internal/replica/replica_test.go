package replica

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"ajdloss/internal/persist"
	"ajdloss/internal/service"
)

// blockCSV builds a deterministic 3-column CSV with a planted block
// structure, the same shape the service tests use.
func blockCSV(classes, a, b int) string {
	var sb strings.Builder
	sb.WriteString("A,B,C\n")
	for c := 0; c < classes; c++ {
		for i := 0; i < a; i++ {
			for j := 0; j < b; j++ {
				fmt.Fprintf(&sb, "a%d_%d,b%d_%d,c%d\n", c, i, c, j, c)
			}
		}
	}
	return sb.String()
}

// newDurablePrimary returns a durable service rooted at dir, serving over an
// httptest server.
func newDurablePrimary(t testing.TB, dir string) (*service.Service, *httptest.Server) {
	t.Helper()
	svc := service.New(64)
	store, err := persist.Open(dir, persist.Options{})
	if err != nil {
		t.Fatalf("persist.Open: %v", err)
	}
	if _, err := svc.EnableDurability(store); err != nil {
		t.Fatalf("EnableDurability: %v", err)
	}
	ts := httptest.NewServer(service.NewHandler(svc))
	t.Cleanup(ts.Close)
	return svc, ts
}

// newFollowerNode returns an in-memory service in follower mode pointed at
// primaryURL, its HTTP server, and a Follower wired to it.
func newFollowerNode(t testing.TB, primaryURL string) (*service.Service, *httptest.Server, *Follower) {
	t.Helper()
	svc := service.New(64)
	svc.SetPrimary(primaryURL)
	ts := httptest.NewServer(service.NewHandler(svc))
	t.Cleanup(ts.Close)
	return svc, ts, NewFollower(svc, primaryURL, FollowerOptions{})
}

func mustRegister(t testing.TB, svc *service.Service, ns, name, csv string) {
	t.Helper()
	if _, err := svc.Registry().RegisterIn(ns, name, strings.NewReader(csv), true); err != nil {
		t.Fatalf("RegisterIn(%s/%s): %v", ns, name, err)
	}
}

// post issues a POST and returns status and body.
func post(t testing.TB, url, contentType, body string) (int, string) {
	t.Helper()
	resp, err := http.Post(url, contentType, strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading POST %s response: %v", url, err)
	}
	return resp.StatusCode, string(data)
}

func get(t testing.TB, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading GET %s response: %v", url, err)
	}
	return resp.StatusCode, string(data)
}

const batchBody = `{"dataset":"block","queries":[{"kind":"entropy","attrs":["A","B"]},{"kind":"mi","a":["A"],"b":["B"]},{"kind":"distinct","attrs":["C"]}]}`

func TestRingDeterministicAndComplete(t *testing.T) {
	nodes := []string{"http://n1", "http://n2", "http://n3"}
	reversed := []string{"http://n3", "http://n2", "http://n1"}
	r1 := NewRing(nodes, 0)
	r2 := NewRing(reversed, 0)
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("ns%d/dataset%d", i%7, i)
		if got, want := r2.Node(key), r1.Node(key); got != want {
			t.Fatalf("ring order sensitivity: key %q -> %q vs %q", key, got, want)
		}
		succ := r1.Successors(key)
		if len(succ) != len(nodes) {
			t.Fatalf("Successors(%q) returned %d nodes, want %d", key, len(succ), len(nodes))
		}
		if succ[0] != r1.Node(key) {
			t.Fatalf("Successors(%q)[0] = %q, want owner %q", key, succ[0], r1.Node(key))
		}
		seen := map[string]bool{}
		for _, n := range succ {
			if seen[n] {
				t.Fatalf("Successors(%q) repeats %q", key, n)
			}
			seen[n] = true
		}
	}
}

func TestRingDistribution(t *testing.T) {
	nodes := []string{"http://n1", "http://n2", "http://n3"}
	r := NewRing(nodes, 0)
	counts := map[string]int{}
	const keys = 9000
	for i := 0; i < keys; i++ {
		counts[r.Node(fmt.Sprintf("default/dataset-%d", i))]++
	}
	for _, n := range nodes {
		// A perfectly even split is 1/3; with 128 vnodes each share should be
		// well inside [1/5, 1/2].
		if counts[n] < keys/5 || counts[n] > keys/2 {
			t.Fatalf("node %s owns %d of %d keys — distribution too skewed: %v", n, counts[n], keys, counts)
		}
	}
}

func TestRingResizeMovesKeysOnlyToNewNode(t *testing.T) {
	before := NewRing([]string{"http://n1", "http://n2", "http://n3"}, 0)
	after := NewRing([]string{"http://n1", "http://n2", "http://n3", "http://n4"}, 0)
	moved := 0
	const keys = 4000
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("default/dataset-%d", i)
		was, is := before.Node(key), after.Node(key)
		if was == is {
			continue
		}
		moved++
		if is != "http://n4" {
			t.Fatalf("key %q moved from %s to %s, not to the added node", key, was, is)
		}
	}
	// Expected movement is ~1/4 of keys; anything over half means the hash is
	// reshuffling instead of rebalancing.
	if moved == 0 || moved > keys/2 {
		t.Fatalf("adding a node moved %d of %d keys", moved, keys)
	}
}

func TestFollowerConvergence(t *testing.T) {
	primary, primaryTS := newDurablePrimary(t, t.TempDir())
	mustRegister(t, primary, "default", "block", blockCSV(3, 2, 2))

	follower, followerTS, f := newFollowerNode(t, primaryTS.URL)
	ctx := context.Background()
	if err := f.SyncOnce(ctx); err != nil {
		t.Fatalf("first SyncOnce: %v", err)
	}

	compare := func(stage string) {
		t.Helper()
		ps, pb := post(t, primaryTS.URL+"/v1/default/batch", "application/json", batchBody)
		fs, fb := post(t, followerTS.URL+"/v1/default/batch", "application/json", batchBody)
		if ps != http.StatusOK || fs != http.StatusOK {
			t.Fatalf("%s: batch status primary=%d follower=%d (%s / %s)", stage, ps, fs, pb, fb)
		}
		if pb != fb {
			t.Fatalf("%s: batch responses diverge\nprimary:  %s\nfollower: %s", stage, pb, fb)
		}
	}
	compare("after bootstrap")

	// Tail new appends — including duplicate rows, which must dedup
	// identically on both sides.
	if _, err := primary.AppendIn("default", "block", [][]string{
		{"a9_0", "b9_0", "c9"},
		{"a9_0", "b9_0", "c9"},
		{"a9_1", "b9_1", "c9"},
	}, false); err != nil {
		t.Fatalf("AppendIn: %v", err)
	}
	if err := f.SyncOnce(ctx); err != nil {
		t.Fatalf("SyncOnce after append: %v", err)
	}
	compare("after WAL tail")

	// Compact the primary's WAL; the follower's next cursor is current, so
	// no re-bootstrap should be needed — but a *stale* follower would see
	// 410 and re-bootstrap, which the service tests cover.
	if _, err := primary.CheckpointIn("default", "block"); err != nil {
		t.Fatalf("CheckpointIn: %v", err)
	}
	if _, err := primary.AppendIn("default", "block", [][]string{{"a9_2", "b9_2", "c9"}}, false); err != nil {
		t.Fatalf("AppendIn after checkpoint: %v", err)
	}
	if err := f.SyncOnce(ctx); err != nil {
		t.Fatalf("SyncOnce after checkpoint: %v", err)
	}
	compare("after checkpoint + tail")

	// The follower publishes its replication state into /stats.
	st := follower.Stats()
	if st.Replication == nil {
		t.Fatal("follower stats carry no replication view")
	}
	if st.Replication.Primary != primaryTS.URL {
		t.Fatalf("replication view primary = %q, want %q", st.Replication.Primary, primaryTS.URL)
	}
	if st.Replication.AppliedRows == 0 || st.Replication.Bootstraps == 0 {
		t.Fatalf("replication view not accumulating: %+v", *st.Replication)
	}

	// Removal on the primary mirrors on the next pass.
	if !primary.RemoveIn("default", "block") {
		t.Fatal("RemoveIn on primary failed")
	}
	if err := f.SyncOnce(ctx); err != nil {
		t.Fatalf("SyncOnce after remove: %v", err)
	}
	if status, _ := get(t, followerTS.URL+"/v1/default/datasets/block/schema"); status != http.StatusNotFound {
		t.Fatalf("removed dataset still served by follower: status %d", status)
	}
}

func TestRouterRoutesToOwnerAndMergesListings(t *testing.T) {
	svcA := service.New(64)
	tsA := httptest.NewServer(service.NewHandler(svcA))
	t.Cleanup(tsA.Close)
	svcB := service.New(64)
	tsB := httptest.NewServer(service.NewHandler(svcB))
	t.Cleanup(tsB.Close)

	rt := NewRouter([]string{tsA.URL, tsB.URL}, RouterOptions{})
	byURL := map[string]*service.Service{tsA.URL: svcA, tsB.URL: svcB}

	// Find two dataset names the ring assigns to different nodes, register
	// each ONLY on its owner: a correct router must hit the right node.
	var names []string
	owners := map[string]bool{}
	for i := 0; len(names) < 2 && i < 100; i++ {
		name := fmt.Sprintf("shard%d", i)
		owner := rt.Ring().Node("default/" + name)
		if owners[owner] {
			continue
		}
		owners[owner] = true
		names = append(names, name)
		mustRegister(t, byURL[owner], "default", name, blockCSV(2, 2, 2))
	}
	if len(names) != 2 {
		t.Fatal("could not find names owned by distinct nodes")
	}

	router := httptest.NewServer(rt.Handler())
	t.Cleanup(router.Close)

	// Single-dataset reads land on the owner (the other node would 404, and
	// 404s do not fail over).
	for _, name := range names {
		if status, body := get(t, router.URL+"/v1/default/datasets/"+name+"/schema"); status != http.StatusOK {
			t.Fatalf("routed schema read for %s: status %d: %s", name, status, body)
		}
	}

	// The merged listing sees datasets from both nodes.
	status, body := get(t, router.URL+"/v1/default/datasets")
	if status != http.StatusOK {
		t.Fatalf("merged listing: status %d: %s", status, body)
	}
	var dl struct {
		Datasets []service.Info `json:"datasets"`
	}
	if err := json.Unmarshal([]byte(body), &dl); err != nil {
		t.Fatalf("merged listing decode: %v", err)
	}
	if len(dl.Datasets) != 2 {
		t.Fatalf("merged listing has %d datasets, want 2: %s", len(dl.Datasets), body)
	}

	// Multi-dataset batch fans out to both owners and merges in order.
	fanBody := fmt.Sprintf(`{"datasets":[%q,%q],"queries":[{"kind":"entropy","attrs":["A"]}]}`, names[0], names[1])
	status, body = post(t, router.URL+"/v1/default/batch", "application/json", fanBody)
	if status != http.StatusOK {
		t.Fatalf("fan-out batch: status %d: %s", status, body)
	}
	var merged struct {
		Namespace string            `json:"namespace"`
		Batches   []json.RawMessage `json:"batches"`
	}
	if err := json.Unmarshal([]byte(body), &merged); err != nil {
		t.Fatalf("fan-out batch decode: %v", err)
	}
	if merged.Namespace != "default" || len(merged.Batches) != 2 {
		t.Fatalf("fan-out batch merged %d views in %q, want 2 in default: %s", len(merged.Batches), merged.Namespace, body)
	}
	for i, raw := range merged.Batches {
		var view struct {
			Generation int64 `json:"generation"`
		}
		if err := json.Unmarshal(raw, &view); err != nil || view.Generation < 1 {
			t.Fatalf("batch part %d is not a batch view (err=%v): %s", i, err, raw)
		}
	}

	// An unknown dataset in the fan-out propagates the node's own 404.
	status, body = post(t, router.URL+"/v1/default/batch", "application/json",
		`{"datasets":["nope"],"queries":[{"kind":"entropy","attrs":["A"]}]}`)
	if status != http.StatusNotFound {
		t.Fatalf("fan-out with unknown dataset: status %d, want 404: %s", status, body)
	}
}

func TestRouterReadFailover(t *testing.T) {
	svcA := service.New(64)
	tsA := httptest.NewServer(service.NewHandler(svcA))
	t.Cleanup(tsA.Close)
	svcB := service.New(64)
	tsB := httptest.NewServer(service.NewHandler(svcB))
	t.Cleanup(tsB.Close)

	// The dataset lives on BOTH nodes (as with a follower mirroring the
	// owner), so a read can succeed anywhere.
	mustRegister(t, svcA, "default", "block", blockCSV(2, 2, 2))
	mustRegister(t, svcB, "default", "block", blockCSV(2, 2, 2))

	rt := NewRouter([]string{tsA.URL, tsB.URL}, RouterOptions{})
	router := httptest.NewServer(rt.Handler())
	t.Cleanup(router.Close)

	// Kill the owner; reads must fail over to the survivor.
	if rt.Ring().Node("default/block") == tsA.URL {
		tsA.Close()
	} else {
		tsB.Close()
	}
	if status, body := get(t, router.URL+"/v1/default/datasets/block/schema"); status != http.StatusOK {
		t.Fatalf("schema read after owner death: status %d: %s", status, body)
	}
	if status, body := post(t, router.URL+"/v1/default/batch", "application/json", batchBody); status != http.StatusOK {
		t.Fatalf("batch after owner death: status %d: %s", status, body)
	}

	// A write (append) must NOT fail over — it lands on the dead owner or
	// the live one, but never retries a node that already answered; with the
	// owner dead the router reports the upstream failure.
	status, _ := post(t, router.URL+"/v1/default/datasets/block/append", "text/csv", "x,y,z\n")
	if status == http.StatusOK {
		// Owner may be the live node, in which case the append succeeds.
		return
	}
	if status != http.StatusBadGateway {
		t.Fatalf("append to dead owner: status %d, want 502", status)
	}
}

func TestRouterFollowsPrimaryRedirect(t *testing.T) {
	primary, primaryTS := newDurablePrimary(t, t.TempDir())
	mustRegister(t, primary, "default", "block", blockCSV(2, 2, 2))

	follower, _, f := newFollowerNode(t, primaryTS.URL)
	if err := f.SyncOnce(context.Background()); err != nil {
		t.Fatalf("SyncOnce: %v", err)
	}
	followerOnly := httptest.NewServer(service.NewHandler(follower))
	t.Cleanup(followerOnly.Close)

	// A router whose ring holds only the follower: writes arrive there, get
	// the 421 + X-Ajdloss-Primary answer, and must be retried against the
	// primary so the client still sees a 200.
	rt := NewRouter([]string{followerOnly.URL}, RouterOptions{})
	router := httptest.NewServer(rt.Handler())
	t.Cleanup(router.Close)

	status, body := post(t, router.URL+"/v1/default/datasets/block/append", "text/csv", "z0,z1,z2\n")
	if status != http.StatusOK {
		t.Fatalf("append through router against follower: status %d: %s", status, body)
	}
	if d, ok := primary.Registry().GetIn("default", "block"); !ok || d.Info().Rows != 2*2*2+1 {
		t.Fatalf("append did not land on the primary")
	}
}

// benchCluster builds two nodes with `shards` datasets spread across them by
// the ring, plus a router over both. Returns the router server and the
// dataset names.
func benchCluster(b *testing.B, shards int) (*httptest.Server, []string, []*httptest.Server) {
	svcA := service.New(256)
	tsA := httptest.NewServer(service.NewHandler(svcA))
	b.Cleanup(tsA.Close)
	svcB := service.New(256)
	tsB := httptest.NewServer(service.NewHandler(svcB))
	b.Cleanup(tsB.Close)
	rt := NewRouter([]string{tsA.URL, tsB.URL}, RouterOptions{})
	byURL := map[string]*service.Service{tsA.URL: svcA, tsB.URL: svcB}
	names := make([]string, shards)
	for i := range names {
		names[i] = fmt.Sprintf("shard%d", i)
		owner := rt.Ring().Node("default/" + names[i])
		mustRegister(b, byURL[owner], "default", names[i], blockCSV(3, 2, 2))
	}
	router := httptest.NewServer(rt.Handler())
	b.Cleanup(router.Close)
	return router, names, []*httptest.Server{tsA, tsB}
}

func benchPost(b *testing.B, url, body string) {
	b.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		b.Fatal(err)
	}
	if _, err := io.Copy(io.Discard, resp.Body); err != nil {
		b.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b.Fatalf("POST %s: %d", url, resp.StatusCode)
	}
}

// BenchmarkRouterDirect is the baseline: the same single-dataset batch sent
// straight to the owning node, no router hop.
func BenchmarkRouterDirect(b *testing.B) {
	router, names, nodes := benchCluster(b, 1)
	_ = router
	body := fmt.Sprintf(`{"dataset":%q,"queries":[{"kind":"entropy","attrs":["A","B"]},{"kind":"distinct","attrs":["C"]}]}`, names[0])
	// Find the owner by asking each node directly.
	var owner string
	for _, ts := range nodes {
		resp, err := http.Get(ts.URL + "/v1/default/datasets/" + names[0] + "/schema")
		if err == nil {
			if resp.StatusCode == http.StatusOK {
				owner = ts.URL
			}
			resp.Body.Close()
		}
	}
	if owner == "" {
		b.Fatal("no owner found")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchPost(b, owner+"/v1/default/batch", body)
	}
}

// BenchmarkRouterProxy measures the router hop on a single-dataset batch:
// subtracting BenchmarkRouterDirect gives the proxy overhead.
func BenchmarkRouterProxy(b *testing.B) {
	router, names, _ := benchCluster(b, 1)
	body := fmt.Sprintf(`{"dataset":%q,"queries":[{"kind":"entropy","attrs":["A","B"]},{"kind":"distinct","attrs":["C"]}]}`, names[0])
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchPost(b, router.URL+"/v1/default/batch", body)
	}
}

// BenchmarkRouterFanout measures a 4-dataset batch fanned out across two
// nodes and merged — one client round trip for four datasets.
func BenchmarkRouterFanout(b *testing.B) {
	router, names, _ := benchCluster(b, 4)
	body := fmt.Sprintf(`{"datasets":[%q,%q,%q,%q],"queries":[{"kind":"entropy","attrs":["A","B"]},{"kind":"distinct","attrs":["C"]}]}`,
		names[0], names[1], names[2], names[3])
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchPost(b, router.URL+"/v1/default/batch", body)
	}
}

// BenchmarkReplicaTail measures one append-then-sync round trip: the
// steady-state cost of keeping a follower current.
func BenchmarkReplicaTail(b *testing.B) {
	primary, primaryTS := newDurablePrimary(b, b.TempDir())
	mustRegister(b, primary, "default", "block", blockCSV(3, 2, 2))
	_, _, f := newFollowerNode(b, primaryTS.URL)
	ctx := context.Background()
	if err := f.SyncOnce(ctx); err != nil {
		b.Fatalf("bootstrap SyncOnce: %v", err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec := fmt.Sprintf("bench%d", i)
		if _, err := primary.AppendIn("default", "block", [][]string{{rec, rec, rec}}, false); err != nil {
			b.Fatalf("AppendIn: %v", err)
		}
		if err := f.SyncOnce(ctx); err != nil {
			b.Fatalf("SyncOnce: %v", err)
		}
	}
	b.StopTimer()
	_ = time.Now()
}

// benchRouterHop measures one proxied read hop (router → node) under
// parallel load with the given client (nil = the router's tuned default).
// The request is LRU-cached on the node, so the measurement isolates the
// HTTP hop itself — connection reuse, not analysis time.
func benchRouterHop(b *testing.B, client *http.Client) {
	svc := service.New(64)
	mustRegister(b, svc, "default", "block", blockCSV(3, 2, 2))
	node := httptest.NewServer(service.NewHandler(svc))
	b.Cleanup(node.Close)
	rt := NewRouter([]string{node.URL}, RouterOptions{Client: client})
	router := httptest.NewServer(rt.Handler())
	b.Cleanup(router.Close)
	url := router.URL + "/v1/default/entropy?dataset=block&attrs=A"
	// The load generator gets a generously pooled transport of its own, so
	// the client → router leg never competes for idle connections and the
	// numbers isolate the router → node leg under comparison.
	outer := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 256}}
	b.Cleanup(outer.CloseIdleConnections)
	b.SetParallelism(8)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			resp, err := outer.Get(url)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := io.Copy(io.Discard, resp.Body); err != nil {
				b.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				b.Fatalf("status %s", resp.Status)
			}
		}
	})
}

// BenchmarkRouterHop uses the router's default client: the shared transport
// with per-host idle pools sized for a node fleet.
func BenchmarkRouterHop(b *testing.B) { benchRouterHop(b, nil) }

// BenchmarkRouterHopDefaultTransport is the before-number: a plain client on
// http.DefaultTransport (2 idle connections per host), which re-dials the
// node on most parallel hops.
func BenchmarkRouterHopDefaultTransport(b *testing.B) {
	benchRouterHop(b, &http.Client{Timeout: 60 * time.Second})
}

package ajdloss

// Parity property tests for the columnar group-count engine: on random
// relations (seeded via internal/randrel) every entropy, J-measure and loss
// value produced by the group-ID path must agree with the legacy
// string-keyed ProjectCounts path to floating-point tolerance, and the
// parallelized discovery routines must be deterministic across runs.

import (
	"math"
	"reflect"
	"testing"

	"ajdloss/internal/core"
	"ajdloss/internal/discovery"
	"ajdloss/internal/infotheory"
	"ajdloss/internal/join"
	"ajdloss/internal/jointree"
	"ajdloss/internal/randrel"
	"ajdloss/internal/relation"
	"ajdloss/internal/schemagen"
)

const parityTol = 1e-9

// parityInstance draws a random 4-attribute relation for the given seed.
func parityInstance(t *testing.T, seed uint64, n int) *relation.Relation {
	t.Helper()
	model := randrel.Model{
		Attrs:   []string{"A", "B", "C", "D"},
		Domains: []int{3 + int(seed%5), 4, 2 + int(seed%3), 5},
		N:       n,
	}
	r, err := model.Sample(randrel.NewRand(seed))
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// subsetsOf enumerates all non-empty attribute subsets.
func subsetsOf(attrs []string) [][]string {
	var out [][]string
	for mask := 1; mask < 1<<len(attrs); mask++ {
		var sub []string
		for i := range attrs {
			if mask&(1<<i) != 0 {
				sub = append(sub, attrs[i])
			}
		}
		out = append(out, sub)
	}
	return out
}

func TestEngineEntropyParity(t *testing.T) {
	for seed := uint64(1); seed <= 12; seed++ {
		r := parityInstance(t, seed, 150)
		for _, sub := range subsetsOf(r.Attrs()) {
			legacy, err := infotheory.LegacyEntropy(r, sub...)
			if err != nil {
				t.Fatal(err)
			}
			got, err := infotheory.Entropy(r, sub...)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(got-legacy) > parityTol {
				t.Fatalf("seed %d H(%v): engine %.15f vs legacy %.15f", seed, sub, got, legacy)
			}
		}
		// Multiset path with scaled multiplicities: same distribution.
		m := relation.MultisetOf(r).Scale(3)
		for _, sub := range subsetsOf(r.Attrs()) {
			legacy, err := infotheory.LegacyEntropy(r, sub...)
			if err != nil {
				t.Fatal(err)
			}
			got, err := infotheory.Entropy(m, sub...)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(got-legacy) > parityTol {
				t.Fatalf("seed %d multiset H(%v): %.15f vs %.15f", seed, sub, got, legacy)
			}
		}
	}
}

// legacyJMeasure recomputes Eq. 7 entirely through the legacy string path.
func legacyJMeasure(t *testing.T, r *relation.Relation, tree *jointree.JoinTree) float64 {
	t.Helper()
	var sum float64
	for _, bag := range tree.Bags {
		h, err := infotheory.LegacyEntropy(r, bag...)
		if err != nil {
			t.Fatal(err)
		}
		sum += h
	}
	for e := range tree.Edges {
		h, err := infotheory.LegacyEntropy(r, tree.Separator(e)...)
		if err != nil {
			t.Fatal(err)
		}
		sum -= h
	}
	hAll, err := infotheory.LegacyEntropy(r, tree.Attrs()...)
	if err != nil {
		t.Fatal(err)
	}
	j := sum - hAll
	if j < 0 && j > -1e-9 {
		j = 0
	}
	return j
}

func TestEngineJMeasureAndLossParity(t *testing.T) {
	for seed := uint64(1); seed <= 8; seed++ {
		r := parityInstance(t, seed, 120)
		schema, err := schemagen.Chain(r.Attrs(), 2, 1)
		if err != nil {
			t.Fatal(err)
		}
		tree, err := jointree.BuildJoinTree(schema)
		if err != nil {
			t.Fatal(err)
		}
		jNew, err := core.JMeasure(r, tree)
		if err != nil {
			t.Fatal(err)
		}
		jLegacy := legacyJMeasure(t, r, tree)
		if math.Abs(jNew-jLegacy) > parityTol {
			t.Fatalf("seed %d: J engine %.15f vs legacy %.15f", seed, jNew, jLegacy)
		}

		// ρ parity: the group-ID message passing must agree with the
		// materialized join cardinality.
		loss, err := core.ComputeLoss(r, schema)
		if err != nil {
			t.Fatal(err)
		}
		joined, err := join.AcyclicJoin(r, schema)
		if err != nil {
			t.Fatal(err)
		}
		if loss.JoinSize != int64(joined.N()) {
			t.Fatalf("seed %d: counted join %d vs materialized %d", seed, loss.JoinSize, joined.N())
		}

		// Theorem 3.2 through the engine: KL(P‖P^T) = J(T).
		rooted, err := jointree.Root(tree, 0)
		if err != nil {
			t.Fatal(err)
		}
		f, err := core.NewFactorization(r, rooted)
		if err != nil {
			t.Fatal(err)
		}
		kl, err := f.KLFromEmpirical()
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(kl-jNew) > 1e-6 {
			t.Fatalf("seed %d: KL %.12f vs J %.12f", seed, kl, jNew)
		}
	}
}

func TestChowLiuParallelDeterminism(t *testing.T) {
	base := parityInstance(t, 42, 150)
	first, err := discovery.ChowLiu(base)
	if err != nil {
		t.Fatal(err)
	}
	for run := 0; run < 5; run++ {
		// Fresh relation each run: cold engine caches, fresh worker pool.
		r := parityInstance(t, 42, 150)
		c, err := discovery.ChowLiu(r)
		if err != nil {
			t.Fatal(err)
		}
		if c.J != first.J {
			t.Fatalf("run %d: J %.17g vs %.17g", run, c.J, first.J)
		}
		if !reflect.DeepEqual(c.Tree.Bags, first.Tree.Bags) {
			t.Fatalf("run %d: bags %v vs %v", run, c.Tree.Bags, first.Tree.Bags)
		}
		if !reflect.DeepEqual(c.Tree.Edges, first.Tree.Edges) {
			t.Fatalf("run %d: edges %v vs %v", run, c.Tree.Edges, first.Tree.Edges)
		}
	}
}

func TestFindMVDsParallelDeterminism(t *testing.T) {
	first, err := discovery.FindMVDs(parityInstance(t, 7, 200), 2, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	for run := 0; run < 3; run++ {
		got, err := discovery.FindMVDs(parityInstance(t, 7, 200), 2, 0.05)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, first) {
			t.Fatalf("run %d: FindMVDs output differs", run)
		}
	}
}

package ajdloss_test

import (
	"fmt"
	"log"

	"ajdloss"
)

// ExampleAnalyze reproduces the paper's Example 4.1: the diagonal relation
// with the independence schema meets the Lemma 4.1 bound with equality.
func ExampleAnalyze() {
	r := ajdloss.Diagonal(10)
	s := ajdloss.MustSchema([]string{"A"}, []string{"B"})
	rep, err := ajdloss.Analyze(r, s)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("spurious=%d rho=%.0f J=log10=%.4f lossless=%v\n",
		rep.Loss.Spurious, rep.Loss.Rho, rep.J, rep.Lossless)
	// Output:
	// spurious=90 rho=9 J=log10=2.3026 lossless=false
}

// ExampleComputeLoss counts the acyclic join without materializing it.
func ExampleComputeLoss() {
	r := ajdloss.FromRows([]string{"A", "B", "C"}, []ajdloss.Tuple{
		{1, 1, 1}, {1, 2, 1}, {2, 1, 2},
	})
	s := ajdloss.MustSchema([]string{"A", "B"}, []string{"B", "C"})
	loss, err := ajdloss.ComputeLoss(r, s)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("join=%d spurious=%d\n", loss.JoinSize, loss.Spurious)
	// Output:
	// join=5 spurious=2
}

// ExampleFindMVDs mines the MVD planted in a tiny block relation.
func ExampleFindMVDs() {
	r := ajdloss.NewRelation("A", "B", "C")
	for c := ajdloss.Value(1); c <= 2; c++ {
		for a := ajdloss.Value(1); a <= 2; a++ {
			for b := ajdloss.Value(1); b <= 2; b++ {
				r.Insert(ajdloss.Tuple{10*c + a, 10*c + b, c})
			}
		}
	}
	cands, err := ajdloss.FindMVDs(r, 1, 1e-9)
	if err != nil {
		log.Fatal(err)
	}
	for _, cand := range cands {
		if len(cand.X) == 1 && cand.X[0] == "C" {
			fmt.Printf("C ->> %v J=%.1f\n", cand.Groups, cand.J)
		}
	}
	// Output:
	// C ->> [[A] [B]] J=0.0
}

// ExampleParseSchema parses the CLI schema syntax.
func ExampleParseSchema() {
	s, err := ajdloss.ParseSchema("A,B; B,C")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(s, ajdloss.IsAcyclic(s))
	// Output:
	// {A,B},{B,C} true
}

// ExampleAssessDecomposition quantifies factorization as compression.
func ExampleAssessDecomposition() {
	r := ajdloss.NewRelation("C", "A", "B")
	for c := ajdloss.Value(1); c <= 3; c++ {
		for a := ajdloss.Value(1); a <= 3; a++ {
			for b := ajdloss.Value(1); b <= 3; b++ {
				r.Insert(ajdloss.Tuple{c, 10*c + a, 20*c + b})
			}
		}
	}
	rep, err := ajdloss.AssessDecomposition(r, ajdloss.MustSchema(
		[]string{"C", "A"}, []string{"C", "B"},
	))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cells %d->%d exact=%v\n", rep.OriginalCells, rep.StoredCells, rep.Exact)
	// Output:
	// cells 81->36 exact=true
}

// Package ajdloss quantifies the loss of acyclic join dependencies (AJDs),
// reproducing Kenig & Weinberger, "Quantifying the Loss of Acyclic Join
// Dependencies", PODS 2023 (arXiv:2210.14572).
//
// Given a relation instance R and an acyclic schema S = {Ω₁,…,Ω_m}, the
// library computes and relates the two loss measures the paper studies:
//
//   - the combinatorial loss ρ(R,S) — the relative number of spurious tuples
//     the acyclic join ⋈ᵢ R[Ωᵢ] generates beyond R;
//   - the information-theoretic loss J(S) — Lee's J-measure, which the paper
//     characterizes as the KL divergence D(P‖P^T) between R's empirical
//     distribution and its join-tree factorization (Theorem 3.2).
//
// It implements the deterministic lower bound J ≤ log(1+ρ) (Lemma 4.1), the
// Theorem 2.2 sandwich, the per-MVD decomposition of Proposition 5.1, the
// random relation model of Definition 5.2, and the high-probability upper
// bound of Theorem 5.1 with the paper's explicit constants — plus the
// substrates these rest on: a relational algebra kernel, GYO/join-tree
// machinery, Yannakakis joins with cardinality counting, and the approximate
// acyclic schema discovery application that motivated the work.
//
// All information quantities are in nats; use infotheory.Bits to convert.
//
// # Quick start
//
//	r := ajdloss.Diagonal(100)                                // Example 4.1
//	s := ajdloss.MustSchema([]string{"A"}, []string{"B"})
//	rep, err := ajdloss.Analyze(r, s)                          // J, ρ, bounds
//
// See examples/ for runnable programs and cmd/figures for regenerating every
// figure and table in EXPERIMENTS.md.
package ajdloss

import (
	"math/rand/v2"

	"ajdloss/internal/core"
	"ajdloss/internal/discovery"
	"ajdloss/internal/fd"
	"ajdloss/internal/infotheory"
	"ajdloss/internal/join"
	"ajdloss/internal/jointree"
	"ajdloss/internal/normalize"
	"ajdloss/internal/randrel"
	"ajdloss/internal/relation"
	"ajdloss/internal/schemagen"
)

// Relational substrate.
type (
	// Relation is a finite set of tuples over named attributes.
	Relation = relation.Relation
	// Tuple is a row of a relation.
	Tuple = relation.Tuple
	// Value is a dictionary-encoded attribute value.
	Value = relation.Value
	// Encoder maps string records to encoded tuples (CSV ingestion).
	Encoder = relation.Encoder
)

// NewRelation returns an empty relation over the given attributes.
func NewRelation(attrs ...string) *Relation { return relation.New(attrs...) }

// FromRows returns a relation containing the given rows.
func FromRows(attrs []string, rows []Tuple) *Relation { return relation.FromRows(attrs, rows) }

// Schema machinery.
type (
	// Schema is a set of bags S = {Ω₁,…,Ω_m}.
	Schema = jointree.Schema
	// JoinTree is a join (junction) tree with the running intersection
	// property.
	JoinTree = jointree.JoinTree
	// MVD is a multivalued dependency X ↠ Y | Z.
	MVD = jointree.MVD
)

// NewSchema constructs a schema from bags.
func NewSchema(bags ...[]string) (*Schema, error) { return jointree.NewSchema(bags...) }

// MustSchema is NewSchema but panics on error.
func MustSchema(bags ...[]string) *Schema { return jointree.MustSchema(bags...) }

// MVDSchema returns the acyclic schema {XY₁,…,XY_k} of the MVD X ↠ Y₁|…|Y_k.
func MVDSchema(x []string, ys ...[]string) (*Schema, error) { return jointree.MVDSchema(x, ys...) }

// IsAcyclic reports whether the schema admits a join tree (GYO).
func IsAcyclic(s *Schema) bool { return jointree.IsAcyclic(s) }

// BuildJoinTree constructs a join tree for an acyclic schema via GYO.
func BuildJoinTree(s *Schema) (*JoinTree, error) { return jointree.BuildJoinTree(s) }

// Core loss analysis.
type (
	// Report is a complete loss analysis (J, KL, ρ, all bounds).
	Report = core.Report
	// Loss is the combinatorial loss ρ(R,S) with join cardinalities.
	Loss = core.Loss
)

// Analyze computes every loss measure and bound of the paper for (R, S).
func Analyze(r *Relation, s *Schema) (*Report, error) { return core.Analyze(r, s) }

// JMeasure returns J(T) in nats (Eq. 7).
func JMeasure(r *Relation, t *JoinTree) (float64, error) { return core.JMeasure(r, t) }

// JMeasureSchema returns J(S) for an acyclic schema.
func JMeasureSchema(r *Relation, s *Schema) (float64, error) { return core.JMeasureSchema(r, s) }

// ComputeLoss returns ρ(R,S) and the join cardinality, computed without
// materializing the join.
func ComputeLoss(r *Relation, s *Schema) (Loss, error) { return core.ComputeLoss(r, s) }

// MVDLoss returns ρ(R,φ) for an MVD φ (Eq. 28).
func MVDLoss(r *Relation, m MVD) (Loss, error) { return core.MVDLoss(r, m) }

// RhoLowerBound returns e^J − 1, the Lemma 4.1 lower bound on ρ.
func RhoLowerBound(j float64) float64 { return core.RhoLowerBound(j) }

// EpsilonStar returns the Theorem 5.1 deviation term ε*(φ,N,δ) (Eq. 38).
func EpsilonStar(dA, dC, n int, delta float64) float64 {
	return core.EpsilonStar(dA, dC, n, delta)
}

// Information measures (nats).

// Entropy returns H(attrs) under R's empirical distribution.
func Entropy(r *Relation, attrs ...string) (float64, error) {
	return infotheory.Entropy(r, attrs...)
}

// MutualInformation returns I(A;B).
func MutualInformation(r *Relation, a, b []string) (float64, error) {
	return infotheory.MutualInformation(r, a, b)
}

// ConditionalMutualInformation returns I(A;B|C) (Eq. 4).
func ConditionalMutualInformation(r *Relation, a, b, c []string) (float64, error) {
	return infotheory.ConditionalMutualInformation(r, a, b, c)
}

// Random relation model (Definition 5.2).
type RandomModel = randrel.Model

// NewRand returns a deterministic generator for experiment seeds.
func NewRand(seed uint64) *rand.Rand { return randrel.NewRand(seed) }

// SampleMVD draws a random relation over (A,B,C) with the given domains.
func SampleMVD(rng *rand.Rand, dA, dB, dC, n int) (*Relation, error) {
	return randrel.SampleMVD(rng, dA, dB, dC, n)
}

// Generators.

// Diagonal returns the Example 4.1 relation over (A,B) with N tuples.
func Diagonal(n int) *Relation { return schemagen.Diagonal(n) }

// Schema discovery (the motivating application, after Kenig et al. 2020).
type (
	// Candidate is a discovered schema with its J-measure.
	Candidate = discovery.Candidate
	// MVDCandidate is a discovered approximate MVD.
	MVDCandidate = discovery.MVDCandidate
)

// Discover searches for an acyclic schema with J ≤ target.
func Discover(r *Relation, target float64) (Candidate, error) {
	return discovery.Discover(r, target)
}

// FindMVDs enumerates approximate MVDs with separators of size ≤ maxSep.
func FindMVDs(r *Relation, maxSep int, threshold float64) ([]MVDCandidate, error) {
	return discovery.FindMVDs(r, maxSep, threshold)
}

// DissectConfig controls recursive schema dissection.
type DissectConfig = discovery.DissectConfig

// Dissect recursively decomposes r's attribute set into an acyclic schema by
// repeated MVD splitting (the mining loop of Kenig et al. 2020).
func Dissect(r *Relation, cfg DissectConfig) (Candidate, error) {
	return discovery.Dissect(r, cfg)
}

// Multisets: the paper's empirical distributions are defined for multisets
// of tuples; Multiset carries multiplicities and plugs into every
// information measure.
type Multiset = relation.Multiset

// NewMultiset returns an empty multiset over the given attributes.
func NewMultiset(attrs ...string) *Multiset { return relation.NewMultiset(attrs...) }

// MultisetOf lifts a relation into a multiset with unit multiplicities.
func MultisetOf(r *Relation) *Multiset { return relation.MultisetOf(r) }

// Functional dependencies (Lee 1987 Part I; FDs ⊂ MVDs ⊂ JDs).
type (
	// FD is a functional dependency X → Y.
	FD = fd.FD
	// DiscoveredFD is an FD found by DiscoverFDs with its error measures.
	DiscoveredFD = fd.Discovered
)

// FDHolds reports whether R ⊨ X → Y.
func FDHolds(r *Relation, f FD) (bool, error) { return fd.Holds(r, f) }

// G3Error returns the minimum fraction of tuples whose removal makes the FD
// hold (0 iff exact).
func G3Error(r *Relation, f FD) (float64, error) { return fd.G3Error(r, f) }

// DiscoverFDs performs a levelwise search for minimal (approximate) FDs.
func DiscoverFDs(r *Relation, cfg fd.DiscoverConfig) ([]DiscoveredFD, error) {
	return fd.Discover(r, cfg)
}

// CandidateKeys returns the minimal keys of r.
func CandidateKeys(r *Relation, maxSize int) ([][]string, error) {
	return fd.CandidateKeys(r, maxSize)
}

// Join sampling.

// JoinSampler draws uniform tuples from an acyclic join without
// materializing it.
type JoinSampler = join.Sampler

// NewJoinSampler prepares uniform sampling from ⋈ᵢ R[Ωᵢ] for an acyclic
// schema over r.
func NewJoinSampler(r *Relation, s *Schema) (*JoinSampler, error) {
	t, err := jointree.BuildJoinTree(s)
	if err != nil {
		return nil, err
	}
	rels, err := join.Projections(r, s)
	if err != nil {
		return nil, err
	}
	return join.NewSampler(t, rels)
}

// SampleSpurious draws up to k uniform join tuples and keeps the spurious
// ones (those not in r).
func SampleSpurious(s *JoinSampler, r *Relation, rng *rand.Rand, k int) []Tuple {
	return join.SampleSpurious(s, r, rng, k)
}

// Normalization: factorize a universal relation over an acyclic schema and
// quantify the compression/loss trade the paper's introduction motivates.
type (
	// Decomposition is a relation factored over an acyclic schema.
	Decomposition = normalize.Decomposition
	// CompressionReport quantifies a decomposition: cells stored, J, ρ,
	// and the Lemma 4.1 floor.
	CompressionReport = normalize.Report
)

// Decompose projects r onto the schema's bags.
func Decompose(r *Relation, s *Schema) (*Decomposition, error) {
	return normalize.Decompose(r, s)
}

// AssessDecomposition reports compression and loss of schema s on r.
func AssessDecomposition(r *Relation, s *Schema) (*CompressionReport, error) {
	return normalize.Assess(r, s)
}

// CompressionFrontier assesses candidate schemas and returns the
// Pareto-optimal compression/loss trade-offs.
func CompressionFrontier(r *Relation, schemas []*Schema) ([]*CompressionReport, error) {
	return normalize.Frontier(r, schemas)
}

// ParseSchema parses the CLI schema syntax "A,B;B,C".
func ParseSchema(s string) (*Schema, error) { return jointree.ParseSchema(s) }

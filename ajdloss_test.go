package ajdloss

import (
	"math"
	"testing"
)

// TestPublicAPIQuickstart exercises the documented public surface end to end
// on Example 4.1.
func TestPublicAPIQuickstart(t *testing.T) {
	r := Diagonal(100)
	s := MustSchema([]string{"A"}, []string{"B"})
	if !IsAcyclic(s) {
		t.Fatal("independence schema must be acyclic")
	}
	rep, err := Analyze(r, s)
	if err != nil {
		t.Fatal(err)
	}
	want := math.Log(100)
	if math.Abs(rep.J-want) > 1e-9 {
		t.Fatalf("J = %v, want log 100", rep.J)
	}
	if rep.Loss.Spurious != 9900 {
		t.Fatalf("spurious = %d", rep.Loss.Spurious)
	}
	if err := rep.Verify(1e-9); err != nil {
		t.Fatal(err)
	}
	if got := RhoLowerBound(rep.J); math.Abs(got-99) > 1e-6 {
		t.Fatalf("lower bound = %v, want 99", got)
	}
}

func TestPublicAPIRandomModel(t *testing.T) {
	rng := NewRand(1)
	r, err := SampleMVD(rng, 8, 8, 2, 40)
	if err != nil {
		t.Fatal(err)
	}
	mi, err := ConditionalMutualInformation(r, []string{"A"}, []string{"B"}, []string{"C"})
	if err != nil {
		t.Fatal(err)
	}
	loss, err := MVDLoss(r, MVD{X: []string{"C"}, Y: []string{"A"}, Z: []string{"B"}})
	if err != nil {
		t.Fatal(err)
	}
	// Lemma 4.1 specialized to an MVD: I(A;B|C) ≤ log(1+ρ).
	if mi > loss.LogOnePlusRho()+1e-9 {
		t.Fatalf("MVD lower bound violated: %v > %v", mi, loss.LogOnePlusRho())
	}
	if eps := EpsilonStar(8, 2, 40, 0.05); eps <= 0 {
		t.Fatalf("EpsilonStar = %v", eps)
	}
}

func TestPublicAPIDiscovery(t *testing.T) {
	// Plant the classic employee MVD: Name ↠ Skill | Language, encoded as
	// a small block-structured relation.
	r := NewRelation("Name", "Skill", "Language")
	for name := Value(1); name <= 4; name++ {
		for skill := Value(1); skill <= 3; skill++ {
			for lang := Value(1); lang <= 2; lang++ {
				r.Insert(Tuple{name, skill + 10*name, lang + 20*name})
			}
		}
	}
	cands, err := FindMVDs(r, 1, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, c := range cands {
		if len(c.X) == 1 && c.X[0] == "Name" && c.J < 1e-9 {
			found = true
		}
	}
	if !found {
		t.Fatal("planted employee MVD not found")
	}
	cand, err := Discover(r, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if cand.J > 1e-9 {
		t.Fatalf("Discover returned lossy schema, J = %v", cand.J)
	}
	// The discovered schema is lossless on the data.
	schema := cand.Schema()
	loss, err := ComputeLoss(r, schema)
	if err != nil {
		t.Fatal(err)
	}
	if loss.Spurious != 0 {
		t.Fatalf("discovered schema loses: %d spurious", loss.Spurious)
	}
}

func TestPublicAPIEntropy(t *testing.T) {
	r := Diagonal(8)
	h, err := Entropy(r, "A")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(h-math.Log(8)) > 1e-9 {
		t.Fatalf("H(A) = %v", h)
	}
	mi, err := MutualInformation(r, []string{"A"}, []string{"B"})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mi-math.Log(8)) > 1e-9 {
		t.Fatalf("I(A;B) = %v", mi)
	}
}

func TestPublicAPISchemaConstruction(t *testing.T) {
	if _, err := NewSchema(); err == nil {
		t.Fatal("empty schema accepted")
	}
	s, err := MVDSchema([]string{"X"}, []string{"Y"}, []string{"Z"})
	if err != nil {
		t.Fatal(err)
	}
	tree, err := BuildJoinTree(s)
	if err != nil {
		t.Fatal(err)
	}
	if tree.Len() != 2 {
		t.Fatalf("tree = %v", tree)
	}
	cyclic := MustSchema([]string{"A", "B"}, []string{"B", "C"}, []string{"C", "A"})
	if IsAcyclic(cyclic) {
		t.Fatal("triangle reported acyclic")
	}
	if _, err := BuildJoinTree(cyclic); err == nil {
		t.Fatal("triangle produced a join tree")
	}
}

func TestPublicAPILossVsJMeasureConsistency(t *testing.T) {
	rng := NewRand(2)
	model := RandomModel{Attrs: []string{"A", "B", "C"}, Domains: []int{4, 4, 4}, N: 30}
	r, err := model.Sample(rng)
	if err != nil {
		t.Fatal(err)
	}
	s := MustSchema([]string{"A", "B"}, []string{"B", "C"})
	j, err := JMeasureSchema(r, s)
	if err != nil {
		t.Fatal(err)
	}
	loss, err := ComputeLoss(r, s)
	if err != nil {
		t.Fatal(err)
	}
	if j > loss.LogOnePlusRho()+1e-9 {
		t.Fatalf("Lemma 4.1 violated through the facade: %v > %v", j, loss.LogOnePlusRho())
	}
}

package ajdloss

import (
	"math"
	"testing"

	"ajdloss/internal/fd"
)

// These tests exercise the facade wrappers not covered by the integration
// tests — every exported function must at least round-trip through its
// internal implementation.

func TestFacadeJoinTreeAndJMeasure(t *testing.T) {
	s := MustSchema([]string{"A", "B"}, []string{"B", "C"})
	tree, err := BuildJoinTree(s)
	if err != nil {
		t.Fatal(err)
	}
	r := FromRows([]string{"A", "B", "C"}, []Tuple{{1, 1, 1}, {2, 2, 2}})
	j, err := JMeasure(r, tree)
	if err != nil {
		t.Fatal(err)
	}
	j2, err := JMeasureSchema(r, s)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(j-j2) > 1e-12 {
		t.Fatalf("JMeasure %v != JMeasureSchema %v", j, j2)
	}
}

func TestFacadeEpsilonStar(t *testing.T) {
	if EpsilonStar(64, 4, 1000, 0.05) <= 0 {
		t.Fatal("EpsilonStar not positive")
	}
}

func TestFacadeMultiset(t *testing.T) {
	m := NewMultiset("A", "B")
	m.Add(Tuple{1, 2}, 3)
	if m.N() != 3 {
		t.Fatalf("N = %d", m.N())
	}
	r := FromRows([]string{"A"}, []Tuple{{1}, {2}})
	if MultisetOf(r).Distinct() != 2 {
		t.Fatal("MultisetOf wrong")
	}
}

func TestFacadeFD(t *testing.T) {
	r := FromRows([]string{"A", "B"}, []Tuple{{1, 10}, {2, 10}, {1, 10}})
	ok, err := FDHolds(r, FD{X: []string{"A"}, Y: []string{"B"}})
	if err != nil || !ok {
		t.Fatalf("FDHolds = %v, %v", ok, err)
	}
	g3, err := G3Error(r, FD{X: nil, Y: []string{"A"}})
	if err != nil || g3 <= 0 {
		t.Fatalf("G3Error = %v, %v", g3, err)
	}
	ds, err := DiscoverFDs(r, fd.DiscoverConfig{MaxLHS: 1})
	if err != nil || len(ds) == 0 {
		t.Fatalf("DiscoverFDs = %v, %v", ds, err)
	}
	keys, err := CandidateKeys(r, 0)
	if err != nil || len(keys) == 0 {
		t.Fatalf("CandidateKeys = %v, %v", keys, err)
	}
}

func TestFacadeDissect(t *testing.T) {
	r := NewRelation("A", "B", "C")
	for c := Value(1); c <= 3; c++ {
		for a := Value(1); a <= 2; a++ {
			for b := Value(1); b <= 2; b++ {
				r.Insert(Tuple{10*c + a, 20*c + b, c})
			}
		}
	}
	cand, err := Dissect(r, DissectConfig{MaxSep: 1, Threshold: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	if cand.J > 1e-9 || cand.Tree.Len() < 2 {
		t.Fatalf("Dissect = %v (J=%v)", cand.Tree, cand.J)
	}
}

func TestFacadeJoinSampler(t *testing.T) {
	r := Diagonal(6)
	s := MustSchema([]string{"A"}, []string{"B"})
	sampler, err := NewJoinSampler(r, s)
	if err != nil {
		t.Fatal(err)
	}
	if sampler.JoinSize() != 36 {
		t.Fatalf("join size = %d", sampler.JoinSize())
	}
	rng := NewRand(1)
	sp := SampleSpurious(sampler, r, rng, 100)
	if len(sp) == 0 {
		t.Fatal("no spurious samples from a 36/6 join")
	}
	// Cyclic schema rejected.
	cyclic := MustSchema([]string{"A", "B"}, []string{"B", "C"}, []string{"C", "A"})
	if _, err := NewJoinSampler(r, cyclic); err == nil {
		t.Fatal("cyclic schema accepted")
	}
}

func TestFacadeDecomposeAndFrontier(t *testing.T) {
	r := Diagonal(8)
	s := MustSchema([]string{"A", "B"})
	d, err := Decompose(r, s)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := d.Reconstruct()
	if err != nil {
		t.Fatal(err)
	}
	if rec.N() != 8 {
		t.Fatalf("reconstruction N = %d", rec.N())
	}
	frontier, err := CompressionFrontier(r, []*Schema{
		s, MustSchema([]string{"A"}, []string{"B"}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(frontier) == 0 {
		t.Fatal("empty frontier")
	}
	if frontier[len(frontier)-1].String() == "" {
		t.Fatal("empty report string")
	}
}

func TestFacadeDiscoverAndMVDSchema(t *testing.T) {
	r := Diagonal(5)
	cand, err := Discover(r, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if cand.J > 1e-9 {
		t.Fatalf("Discover J = %v", cand.J)
	}
	s, err := MVDSchema([]string{"X"}, []string{"Y"}, []string{"Z"})
	if err != nil || s.Len() != 2 {
		t.Fatalf("MVDSchema = %v, %v", s, err)
	}
	if _, err := NewSchema([]string{"A"}); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeRandomModel(t *testing.T) {
	model := RandomModel{Attrs: []string{"A", "B"}, Domains: []int{5, 5}, N: 10}
	r, err := model.Sample(NewRand(3))
	if err != nil || r.N() != 10 {
		t.Fatalf("Sample = %v, %v", r, err)
	}
	h, err := Entropy(r, "A", "B")
	if err != nil || math.Abs(h-math.Log(10)) > 1e-9 {
		t.Fatalf("Entropy = %v, %v", h, err)
	}
}

// Command gendata generates synthetic relation instances as CSV for use
// with the ajdloss and discover tools: the paper's random relation model,
// planted lossless AJDs with optional noise, the Example 4.1 diagonal
// family, and block-structured MVDs.
//
// Usage:
//
//	gendata -kind random  -attrs 4 -domain 8 -n 500            > r.csv
//	gendata -kind planted -bags 3 -attrs 5 -domain 4 -n 40 -noise 10
//	gendata -kind diagonal -n 100
//	gendata -kind blockmvd -classes 4 -block 6 -noise 16
//
// With -append the header row is suppressed, producing a batch in the shape
// the analysis daemon's streaming endpoint ingests — generate a base with
// one seed and follow-up batches with different seeds:
//
//	gendata -kind random -n 1000 -seed 1 > base.csv
//	gendata -kind random -n 50 -seed 2 -append | curl --data-binary @- \
//	    http://localhost:8347/datasets/r/append
//
// All generators are deterministic for a fixed -seed.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"ajdloss/internal/randrel"
	"ajdloss/internal/relation"
	"ajdloss/internal/schemagen"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "gendata:", err)
		os.Exit(1)
	}
}

// run writes the generated CSV to stdout only; flag errors and usage go to
// stderr so the CSV stream stays clean for piping into discover/ajdloss.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("gendata", flag.ContinueOnError)
	fs.SetOutput(stderr)
	kind := fs.String("kind", "random", "random | planted | diagonal | blockmvd")
	attrs := fs.Int("attrs", 4, "number of attributes (random, planted)")
	domain := fs.Int("domain", 8, "per-attribute domain size (random, planted)")
	n := fs.Int("n", 100, "relation size (random: exact; planted: per-bag target; diagonal: N)")
	bags := fs.Int("bags", 3, "bags of the planted join tree (planted)")
	noise := fs.Int("noise", 0, "uniform noise tuples to add (planted, blockmvd)")
	classes := fs.Int("classes", 4, "number of C classes (blockmvd)")
	block := fs.Int("block", 6, "block size per class (blockmvd)")
	seed := fs.Uint64("seed", 1, "PRNG seed")
	appendMode := fs.Bool("append", false, "emit rows without a header (streaming append batch)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	rng := randrel.NewRand(*seed)
	var r *relation.Relation
	var err error
	switch *kind {
	case "random":
		names := schemagen.AttrNames(*attrs)
		domains := make([]int, *attrs)
		for i := range domains {
			domains[i] = *domain
		}
		model := randrel.Model{Attrs: names, Domains: domains, N: *n}
		if p, overflow := model.DomainProduct(); !overflow && int64(model.N) > p {
			model.N = int(p)
		}
		r, err = model.Sample(rng)
	case "planted":
		jt, terr := schemagen.RandomJoinTree(rng, *bags, *attrs, 0.4)
		if terr != nil {
			return terr
		}
		domains := schemagen.UniformDomains(jt.Attrs(), *domain)
		r, err = schemagen.LosslessRelation(rng, jt, domains, *n)
		if err == nil && *noise > 0 {
			r, err = schemagen.NoisyRelation(rng, r, domains, *noise)
		}
	case "diagonal":
		r = schemagen.Diagonal(*n)
	case "blockmvd":
		r = schemagen.BlockMVD(rng, *classes, *block)
		if *noise > 0 {
			d := *classes * *block
			domains := map[string]int{"A": d, "B": d, "C": *classes}
			r, err = schemagen.NoisyRelation(rng, r, domains, *noise)
		}
	default:
		return fmt.Errorf("unknown -kind %q", *kind)
	}
	if err != nil {
		return err
	}
	if *appendMode {
		return relation.WriteCSVRows(stdout, r, nil)
	}
	return relation.WriteCSV(stdout, r, nil)
}

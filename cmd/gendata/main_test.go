package main

import (
	"io"
	"strings"
	"testing"
)

func TestRunKinds(t *testing.T) {
	cases := []struct {
		args     []string
		wantRows int // including header
	}{
		{[]string{"-kind", "diagonal", "-n", "5"}, 6},
		{[]string{"-kind", "random", "-attrs", "3", "-domain", "4", "-n", "10"}, 11},
		{[]string{"-kind", "blockmvd", "-classes", "2", "-block", "2"}, 9},
		{[]string{"-kind", "blockmvd", "-classes", "2", "-block", "2", "-noise", "3"}, 12},
	}
	for _, c := range cases {
		var out strings.Builder
		if err := run(c.args, &out, io.Discard); err != nil {
			t.Fatalf("%v: %v", c.args, err)
		}
		rows := strings.Count(strings.TrimSpace(out.String()), "\n") + 1
		if rows != c.wantRows {
			t.Fatalf("%v: %d rows, want %d\n%s", c.args, rows, c.wantRows, out.String())
		}
	}
}

func TestRunPlanted(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-kind", "planted", "-bags", "2", "-attrs", "3", "-domain", "3", "-n", "6", "-seed", "2"}, &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	header := strings.SplitN(out.String(), "\n", 2)[0]
	for _, a := range []string{"X1", "X2", "X3"} {
		if !strings.Contains(header, a) {
			t.Fatalf("planted header %q missing %s", header, a)
		}
	}
	if strings.Count(out.String(), "\n") < 2 {
		t.Fatalf("planted relation too small:\n%s", out.String())
	}
}

// TestRunAppendMode: -append suppresses the header so the output can be
// POSTed straight to the daemon's append endpoint.
func TestRunAppendMode(t *testing.T) {
	var full, batch strings.Builder
	if err := run([]string{"-kind", "random", "-attrs", "3", "-n", "8", "-seed", "3"}, &full, io.Discard); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-kind", "random", "-attrs", "3", "-n", "8", "-seed", "3", "-append"}, &batch, io.Discard); err != nil {
		t.Fatal(err)
	}
	header := strings.SplitN(full.String(), "\n", 2)[0]
	if strings.Contains(batch.String(), header) {
		t.Fatalf("-append output still has header %q:\n%s", header, batch.String())
	}
	if full.String() != header+"\n"+batch.String() {
		t.Fatalf("-append rows differ from headered rows:\n%s\nvs\n%s", full.String(), batch.String())
	}
}

func TestRunUnknownKind(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-kind", "nope"}, &out, io.Discard); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

func TestRunDeterministic(t *testing.T) {
	var a, b strings.Builder
	if err := run([]string{"-kind", "random", "-seed", "7"}, &a, io.Discard); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-kind", "random", "-seed", "7"}, &b, io.Discard); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("same seed produced different CSV")
	}
}

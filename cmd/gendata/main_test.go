package main

import (
	"io"
	"strings"
	"testing"
)

func TestRunKinds(t *testing.T) {
	cases := []struct {
		args     []string
		wantRows int // including header
	}{
		{[]string{"-kind", "diagonal", "-n", "5"}, 6},
		{[]string{"-kind", "random", "-attrs", "3", "-domain", "4", "-n", "10"}, 11},
		{[]string{"-kind", "blockmvd", "-classes", "2", "-block", "2"}, 9},
		{[]string{"-kind", "blockmvd", "-classes", "2", "-block", "2", "-noise", "3"}, 12},
	}
	for _, c := range cases {
		var out strings.Builder
		if err := run(c.args, &out, io.Discard); err != nil {
			t.Fatalf("%v: %v", c.args, err)
		}
		rows := strings.Count(strings.TrimSpace(out.String()), "\n") + 1
		if rows != c.wantRows {
			t.Fatalf("%v: %d rows, want %d\n%s", c.args, rows, c.wantRows, out.String())
		}
	}
}

func TestRunPlanted(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-kind", "planted", "-bags", "2", "-attrs", "3", "-domain", "3", "-n", "6", "-seed", "2"}, &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	header := strings.SplitN(out.String(), "\n", 2)[0]
	for _, a := range []string{"X1", "X2", "X3"} {
		if !strings.Contains(header, a) {
			t.Fatalf("planted header %q missing %s", header, a)
		}
	}
	if strings.Count(out.String(), "\n") < 2 {
		t.Fatalf("planted relation too small:\n%s", out.String())
	}
}

func TestRunUnknownKind(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-kind", "nope"}, &out, io.Discard); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

func TestRunDeterministic(t *testing.T) {
	var a, b strings.Builder
	if err := run([]string{"-kind", "random", "-seed", "7"}, &a, io.Discard); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-kind", "random", "-seed", "7"}, &b, io.Discard); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("same seed produced different CSV")
	}
}

// Command ajdlint runs the repository's invariant analyzers (internal/lint)
// over a set of packages and exits non-zero when any enforced diagnostic
// survives suppression.
//
// Usage:
//
//	ajdlint [-list] [-only name[,name]] [-no-advisory] [packages...]
//
// Packages default to ./... relative to the current directory. Diagnostics
// print one per line as file:line:col: analyzer: message. Advisory analyzers
// (fieldalign) print with an "advisory:" prefix and never affect the exit
// code.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"ajdloss/internal/lint"
)

func main() {
	listFlag := flag.Bool("list", false, "list analyzers and exit")
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	noAdvisory := flag.Bool("no-advisory", false, "suppress advisory diagnostics from the output")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: ajdlint [-list] [-only name,...] [-no-advisory] [packages...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := lint.All()
	if *listFlag {
		for _, a := range analyzers {
			kind := "enforced"
			if a.Advisory {
				kind = "advisory"
			}
			fmt.Printf("%-14s %s\n%14s %s\n", a.Name, kind, "", a.Doc)
		}
		return
	}
	if *only != "" {
		want := make(map[string]bool)
		for _, name := range strings.Split(*only, ",") {
			want[strings.TrimSpace(name)] = true
		}
		var picked []*lint.Analyzer
		for _, a := range analyzers {
			if want[a.Name] {
				picked = append(picked, a)
				delete(want, a.Name)
			}
		}
		for name := range want {
			fmt.Fprintf(os.Stderr, "ajdlint: unknown analyzer %q (see ajdlint -list)\n", name)
			os.Exit(2)
		}
		analyzers = picked
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "ajdlint:", err)
		os.Exit(2)
	}
	pkgs, err := lint.LoadPackages(cwd, patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ajdlint:", err)
		os.Exit(2)
	}
	diags, err := lint.Run(pkgs, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ajdlint:", err)
		os.Exit(2)
	}
	failing := 0
	for _, d := range diags {
		if d.Advisory {
			if !*noAdvisory {
				fmt.Printf("%s: advisory: %s: %s\n", d.Pos, d.Analyzer, d.Message)
			}
			continue
		}
		failing++
		fmt.Printf("%s: %s: %s\n", d.Pos, d.Analyzer, d.Message)
	}
	if failing > 0 {
		fmt.Fprintf(os.Stderr, "ajdlint: %d diagnostic(s)\n", failing)
		os.Exit(1)
	}
}

package main

import (
	"bytes"
	"encoding/json"
	"os"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: ajdloss/internal/engine
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkBatchAnalyze/batch-8         	       3	   3563078 ns/op	 2616312 B/op	     594 allocs/op
BenchmarkBatchAnalyze/sequential-cold-8 	       3	  12960554 ns/op	10642920 B/op	    1447 allocs/op
BenchmarkEntropy-8   	 120	 9876.5 ns/op
BenchmarkBroken --- FAIL: boom
PASS
ok  	ajdloss/internal/engine	0.093s
`

func TestParse(t *testing.T) {
	var buf bytes.Buffer
	if err := run(nil, strings.NewReader(sample), &buf); err != nil {
		t.Fatal(err)
	}
	var out struct {
		Benchmarks []Result `json:"benchmarks"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3: %+v", len(out.Benchmarks), out.Benchmarks)
	}
	b0 := out.Benchmarks[0]
	if b0.Name != "BenchmarkBatchAnalyze/batch" || b0.NsPerOp != 3563078 || b0.Iterations != 3 {
		t.Fatalf("first benchmark: %+v", b0)
	}
	if b0.BytesPerOp == nil || *b0.BytesPerOp != 2616312 || b0.AllocsPerOp == nil || *b0.AllocsPerOp != 594 {
		t.Fatalf("first benchmark allocs: %+v", b0)
	}
	// The -8 cpu suffix is stripped; a name whose last segment is not a
	// number keeps its dash.
	b2 := out.Benchmarks[2]
	if b2.Name != "BenchmarkEntropy" || b2.NsPerOp != 9876.5 || b2.BytesPerOp != nil {
		t.Fatalf("third benchmark: %+v", b2)
	}
}

func TestTrimCPUSuffix(t *testing.T) {
	for in, want := range map[string]string{
		"BenchmarkX-8":          "BenchmarkX",
		"BenchmarkX":            "BenchmarkX",
		"BenchmarkX/sub-case-4": "BenchmarkX/sub-case",
		"BenchmarkX/sub-case":   "BenchmarkX/sub-case",
	} {
		if got := trimCPUSuffix(in); got != want {
			t.Errorf("trimCPUSuffix(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestRunUsage(t *testing.T) {
	if err := run([]string{"a", "b"}, strings.NewReader(""), &bytes.Buffer{}); err == nil {
		t.Fatal("two args accepted")
	}
	if err := run([]string{"/nonexistent/bench.txt"}, strings.NewReader(""), &bytes.Buffer{}); err == nil {
		t.Fatal("missing file accepted")
	}
}

// An empty run (zero parseable benchmark lines) must fail, not emit an empty
// benchmarks array that a later -compare would wave through.
func TestRunEmptyInputFails(t *testing.T) {
	err := run(nil, strings.NewReader("PASS\nok  \tajdloss\t0.01s\n"), &bytes.Buffer{})
	if err == nil || !strings.Contains(err.Error(), "no benchmark lines") {
		t.Fatalf("empty input: err = %v, want no-benchmark-lines error", err)
	}
}

// writeBaseline converts bench text into a baseline JSON file via run itself.
func writeBaseline(t *testing.T, benchText string) string {
	t.Helper()
	var buf bytes.Buffer
	if err := run(nil, strings.NewReader(benchText), &buf); err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/baseline.json"
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const compareBase = `BenchmarkFast-8	100	1000 ns/op	512 B/op	10 allocs/op
BenchmarkSlow-8	100	2000 ns/op
`

func TestCompareWithinTolerance(t *testing.T) {
	base := writeBaseline(t, compareBase)
	// +10% ns/op and equal allocs: inside the 25% default tolerance. A
	// second, slower occurrence of Fast checks the min-of-count reduction.
	current := `BenchmarkFast-8	100	1100 ns/op	512 B/op	10 allocs/op
BenchmarkFast-8	100	9999 ns/op	512 B/op	10 allocs/op
BenchmarkSlow-8	100	1500 ns/op
BenchmarkBrandNew-8	100	42 ns/op
`
	var buf bytes.Buffer
	if err := run([]string{"-compare", base}, strings.NewReader(current), &buf); err != nil {
		t.Fatalf("compare failed: %v\n%s", err, buf.String())
	}
	out := buf.String()
	if !strings.Contains(out, "OK: 2 benchmark(s)") {
		t.Fatalf("expected 2 compared benchmarks:\n%s", out)
	}
	if !strings.Contains(out, "new (no baseline)") {
		t.Fatalf("BrandNew should be reported as new:\n%s", out)
	}
	if strings.Contains(out, "REGRESSION") {
		t.Fatalf("no regression expected:\n%s", out)
	}
}

func TestCompareNsRegressionFails(t *testing.T) {
	base := writeBaseline(t, compareBase)
	current := `BenchmarkFast-8	100	1600 ns/op	512 B/op	10 allocs/op
`
	var buf bytes.Buffer
	err := run([]string{"-compare", base, "-tolerance", "0.25"}, strings.NewReader(current), &buf)
	if err == nil || !strings.Contains(err.Error(), "BenchmarkFast") {
		t.Fatalf("60%% ns/op regression: err = %v\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "REGRESSION") {
		t.Fatalf("regression line not flagged:\n%s", buf.String())
	}
	// A looser tolerance admits the same delta.
	buf.Reset()
	if err := run([]string{"-compare", base, "-tolerance", "0.75"}, strings.NewReader(current), &buf); err != nil {
		t.Fatalf("75%% tolerance should pass: %v", err)
	}
}

func TestCompareAllocsRegressionFails(t *testing.T) {
	base := writeBaseline(t, compareBase)
	// ns/op improved but allocs/op doubled: still a gate failure.
	current := `BenchmarkFast-8	100	900 ns/op	512 B/op	20 allocs/op
`
	var buf bytes.Buffer
	err := run([]string{"-compare", base}, strings.NewReader(current), &buf)
	if err == nil || !strings.Contains(err.Error(), "BenchmarkFast") {
		t.Fatalf("allocs regression: err = %v\n%s", err, buf.String())
	}
}

func TestCompareNoOverlapFails(t *testing.T) {
	base := writeBaseline(t, compareBase)
	var buf bytes.Buffer
	err := run([]string{"-compare", base}, strings.NewReader("BenchmarkOther-8	10	5 ns/op\n"), &buf)
	if err == nil || !strings.Contains(err.Error(), "no benchmarks in common") {
		t.Fatalf("disjoint sets: err = %v", err)
	}
}

func TestCompareBadBaseline(t *testing.T) {
	if err := run([]string{"-compare", "/nonexistent.json"}, strings.NewReader(compareBase), &bytes.Buffer{}); err == nil {
		t.Fatal("missing baseline accepted")
	}
	path := t.TempDir() + "/empty.json"
	if err := os.WriteFile(path, []byte(`{"benchmarks":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-compare", path}, strings.NewReader(compareBase), &bytes.Buffer{}); err == nil {
		t.Fatal("empty baseline accepted")
	}
}

package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: ajdloss/internal/engine
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkBatchAnalyze/batch-8         	       3	   3563078 ns/op	 2616312 B/op	     594 allocs/op
BenchmarkBatchAnalyze/sequential-cold-8 	       3	  12960554 ns/op	10642920 B/op	    1447 allocs/op
BenchmarkEntropy-8   	 120	 9876.5 ns/op
BenchmarkBroken --- FAIL: boom
PASS
ok  	ajdloss/internal/engine	0.093s
`

func TestParse(t *testing.T) {
	var buf bytes.Buffer
	if err := run(nil, strings.NewReader(sample), &buf); err != nil {
		t.Fatal(err)
	}
	var out struct {
		Benchmarks []Result `json:"benchmarks"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3: %+v", len(out.Benchmarks), out.Benchmarks)
	}
	b0 := out.Benchmarks[0]
	if b0.Name != "BenchmarkBatchAnalyze/batch" || b0.NsPerOp != 3563078 || b0.Iterations != 3 {
		t.Fatalf("first benchmark: %+v", b0)
	}
	if b0.BytesPerOp == nil || *b0.BytesPerOp != 2616312 || b0.AllocsPerOp == nil || *b0.AllocsPerOp != 594 {
		t.Fatalf("first benchmark allocs: %+v", b0)
	}
	// The -8 cpu suffix is stripped; a name whose last segment is not a
	// number keeps its dash.
	b2 := out.Benchmarks[2]
	if b2.Name != "BenchmarkEntropy" || b2.NsPerOp != 9876.5 || b2.BytesPerOp != nil {
		t.Fatalf("third benchmark: %+v", b2)
	}
}

func TestTrimCPUSuffix(t *testing.T) {
	for in, want := range map[string]string{
		"BenchmarkX-8":          "BenchmarkX",
		"BenchmarkX":            "BenchmarkX",
		"BenchmarkX/sub-case-4": "BenchmarkX/sub-case",
		"BenchmarkX/sub-case":   "BenchmarkX/sub-case",
	} {
		if got := trimCPUSuffix(in); got != want {
			t.Errorf("trimCPUSuffix(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestRunUsage(t *testing.T) {
	if err := run([]string{"a", "b"}, strings.NewReader(""), &bytes.Buffer{}); err == nil {
		t.Fatal("two args accepted")
	}
	if err := run([]string{"/nonexistent/bench.txt"}, strings.NewReader(""), &bytes.Buffer{}); err == nil {
		t.Fatal("missing file accepted")
	}
}

// Command benchjson converts `go test -bench` text output into
// machine-readable JSON, so CI can track the performance trajectory across
// PRs without scraping free-form benchmark text.
//
// Usage:
//
//	go test -bench=. -run xxx ./... | benchjson > BENCH_results.json
//	benchjson bench.txt > BENCH_results.json
//
// The output maps each benchmark (name with the -cpu suffix stripped) to its
// ns/op plus, when present, B/op and allocs/op:
//
//	{
//	  "benchmarks": [
//	    {"name": "BenchmarkBatchAnalyze/batch", "ns_per_op": 3563078, ...}
//	  ]
//	}
//
// Lines that are not benchmark results (headers, PASS/ok, failures) are
// ignored; a benchmark that appears several times (e.g. -count>1) keeps one
// entry per occurrence, preserving input order.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// Result is one parsed benchmark line.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  *int64  `json:"bytes_per_op,omitempty"`
	AllocsPerOp *int64  `json:"allocs_per_op,omitempty"`
}

type output struct {
	Benchmarks []Result `json:"benchmarks"`
}

func run(args []string, stdin io.Reader, stdout io.Writer) error {
	in := stdin
	if len(args) > 1 {
		return fmt.Errorf("usage: benchjson [bench.txt] < go-test-bench-output")
	}
	if len(args) == 1 {
		f, err := os.Open(args[0])
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	out, err := parse(in)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

func parse(in io.Reader) (*output, error) {
	out := &output{Benchmarks: []Result{}}
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue // e.g. "Benchmark... --- FAIL" lines
		}
		r := Result{Name: trimCPUSuffix(fields[0]), Iterations: iters}
		seen := false
		for i := 2; i+1 < len(fields); i += 2 {
			val := fields[i]
			switch fields[i+1] {
			case "ns/op":
				v, err := strconv.ParseFloat(val, 64)
				if err != nil {
					return nil, fmt.Errorf("bad ns/op %q for %s", val, r.Name)
				}
				r.NsPerOp = v
				seen = true
			case "B/op":
				if v, err := strconv.ParseInt(val, 10, 64); err == nil {
					r.BytesPerOp = &v
				}
			case "allocs/op":
				if v, err := strconv.ParseInt(val, 10, 64); err == nil {
					r.AllocsPerOp = &v
				}
			}
		}
		if seen {
			out.Benchmarks = append(out.Benchmarks, r)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// trimCPUSuffix drops the trailing "-N" GOMAXPROCS marker go test appends to
// benchmark names, so results are keyed stably across machines.
func trimCPUSuffix(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

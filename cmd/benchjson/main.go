// Command benchjson converts `go test -bench` text output into
// machine-readable JSON, so CI can track the performance trajectory across
// PRs without scraping free-form benchmark text.
//
// Usage:
//
//	go test -bench=. -run xxx ./... | benchjson > BENCH_results.json
//	benchjson bench.txt > BENCH_results.json
//	go test -bench=... -count=3 ./... | benchjson -compare BENCH_results.json -tolerance 0.5
//
// The output maps each benchmark (name with the -cpu suffix stripped) to its
// ns/op plus, when present, B/op and allocs/op:
//
//	{
//	  "benchmarks": [
//	    {"name": "BenchmarkBatchAnalyze/batch", "ns_per_op": 3563078, ...}
//	  ]
//	}
//
// Lines that are not benchmark results (headers, PASS/ok, failures) are
// ignored; a benchmark that appears several times (e.g. -count>1) keeps one
// entry per occurrence, preserving input order. Input with zero parseable
// benchmark lines is an error — an empty run must not silently produce an
// empty (or trivially passing) result.
//
// With -compare, instead of emitting JSON the current results are checked
// against a committed baseline: for every benchmark present in both (taking
// the minimum over repeated runs, so -count=3 noise collapses to the best
// observation), the ns/op, B/op and allocs/op deltas are printed and the
// exit status is non-zero if any ns/op or allocs/op regression exceeds
// -tolerance (a fraction: 0.25 allows +25%). Benchmarks only in the baseline
// are skipped — CI gates on a stable subset, not the full suite.
package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// Result is one parsed benchmark line.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  *int64  `json:"bytes_per_op,omitempty"`
	AllocsPerOp *int64  `json:"allocs_per_op,omitempty"`
}

type output struct {
	Benchmarks []Result `json:"benchmarks"`
}

func run(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	compare := fs.String("compare", "", "baseline BENCH_results.json to compare against instead of emitting JSON")
	tolerance := fs.Float64("tolerance", 0.25, "allowed fractional ns/op and allocs/op regression vs -compare baseline")
	if err := fs.Parse(args); err != nil {
		return fmt.Errorf("usage: benchjson [-compare baseline.json [-tolerance 0.25]] [bench.txt]: %w", err)
	}
	rest := fs.Args()
	in := stdin
	if len(rest) > 1 {
		return errors.New("usage: benchjson [-compare baseline.json [-tolerance 0.25]] [bench.txt]")
	}
	if len(rest) == 1 {
		f, err := os.Open(rest[0])
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	out, err := parse(in)
	if err != nil {
		return err
	}
	if len(out.Benchmarks) == 0 {
		return errors.New("no benchmark lines in input (did the bench run actually execute?)")
	}
	if *compare != "" {
		base, err := readBaseline(*compare)
		if err != nil {
			return err
		}
		return compareResults(stdout, base, out, *tolerance)
	}
	enc := json.NewEncoder(stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

func parse(in io.Reader) (*output, error) {
	out := &output{Benchmarks: []Result{}}
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue // e.g. "Benchmark... --- FAIL" lines
		}
		r := Result{Name: trimCPUSuffix(fields[0]), Iterations: iters}
		seen := false
		for i := 2; i+1 < len(fields); i += 2 {
			val := fields[i]
			switch fields[i+1] {
			case "ns/op":
				v, err := strconv.ParseFloat(val, 64)
				if err != nil {
					return nil, fmt.Errorf("bad ns/op %q for %s", val, r.Name)
				}
				r.NsPerOp = v
				seen = true
			case "B/op":
				if v, err := strconv.ParseInt(val, 10, 64); err == nil {
					r.BytesPerOp = &v
				}
			case "allocs/op":
				if v, err := strconv.ParseInt(val, 10, 64); err == nil {
					r.AllocsPerOp = &v
				}
			}
		}
		if seen {
			out.Benchmarks = append(out.Benchmarks, r)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// trimCPUSuffix drops the trailing "-N" GOMAXPROCS marker go test appends to
// benchmark names, so results are keyed stably across machines.
func trimCPUSuffix(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

// readBaseline loads a committed BENCH_results.json.
func readBaseline(path string) (*output, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var base output
	if err := json.Unmarshal(data, &base); err != nil {
		return nil, fmt.Errorf("baseline %s: %w", path, err)
	}
	if len(base.Benchmarks) == 0 {
		return nil, fmt.Errorf("baseline %s has no benchmarks", path)
	}
	return &base, nil
}

// reduce collapses repeated runs of the same benchmark (-count>1) to the
// minimum per metric — the least-noisy observation of the true cost.
func reduce(out *output) map[string]Result {
	m := make(map[string]Result, len(out.Benchmarks))
	for _, r := range out.Benchmarks {
		prev, ok := m[r.Name]
		if !ok {
			m[r.Name] = r
			continue
		}
		if r.NsPerOp < prev.NsPerOp {
			prev.NsPerOp = r.NsPerOp
		}
		prev.BytesPerOp = minPtr(prev.BytesPerOp, r.BytesPerOp)
		prev.AllocsPerOp = minPtr(prev.AllocsPerOp, r.AllocsPerOp)
		m[r.Name] = prev
	}
	return m
}

func minPtr(a, b *int64) *int64 {
	if a == nil {
		return b
	}
	if b == nil || *a <= *b {
		return a
	}
	return b
}

// compareResults prints per-benchmark deltas of current vs base and returns
// an error if any shared benchmark's ns/op or allocs/op regressed by more
// than tolerance. B/op is reported but never gates: byte sizes shift with
// map growth thresholds across Go versions and are not what the gate
// protects (latency and allocation count are).
func compareResults(w io.Writer, base, current *output, tolerance float64) error {
	if tolerance < 0 {
		return fmt.Errorf("tolerance %v must be >= 0", tolerance)
	}
	baseline := reduce(base)
	cur := reduce(current)
	names := make([]string, 0, len(cur))
	for name := range cur {
		names = append(names, name)
	}
	sort.Strings(names)
	var failures []string
	compared := 0
	for _, name := range names {
		c := cur[name]
		b, ok := baseline[name]
		if !ok {
			fmt.Fprintf(w, "%-60s  new (no baseline): %s ns/op\n", name, fmtNs(c.NsPerOp))
			continue
		}
		compared++
		nsDelta := delta(c.NsPerOp, b.NsPerOp)
		line := fmt.Sprintf("%-60s  ns/op %s -> %s (%+.1f%%)", name, fmtNs(b.NsPerOp), fmtNs(c.NsPerOp), 100*nsDelta)
		if b.BytesPerOp != nil && c.BytesPerOp != nil {
			line += fmt.Sprintf("  B/op %d -> %d (%+.1f%%)", *b.BytesPerOp, *c.BytesPerOp, 100*delta(float64(*c.BytesPerOp), float64(*b.BytesPerOp)))
		}
		allocsFail := false
		if b.AllocsPerOp != nil && c.AllocsPerOp != nil {
			allocsDelta := delta(float64(*c.AllocsPerOp), float64(*b.AllocsPerOp))
			line += fmt.Sprintf("  allocs/op %d -> %d (%+.1f%%)", *b.AllocsPerOp, *c.AllocsPerOp, 100*allocsDelta)
			allocsFail = allocsDelta > tolerance
		}
		if nsDelta > tolerance || allocsFail {
			line += "  REGRESSION"
			failures = append(failures, name)
		}
		fmt.Fprintln(w, line)
	}
	if compared == 0 {
		return errors.New("no benchmarks in common with the baseline")
	}
	if len(failures) > 0 {
		return fmt.Errorf("%d benchmark(s) regressed past tolerance %.0f%%: %s",
			len(failures), 100*tolerance, strings.Join(failures, ", "))
	}
	fmt.Fprintf(w, "OK: %d benchmark(s) within tolerance %.0f%%\n", compared, 100*tolerance)
	return nil
}

// delta is the fractional change of cur vs base (+0.10 = 10% slower).
func delta(cur, base float64) float64 {
	if base == 0 {
		if cur == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return (cur - base) / base
}

func fmtNs(ns float64) string {
	if ns == math.Trunc(ns) {
		return strconv.FormatFloat(ns, 'f', 0, 64)
	}
	return strconv.FormatFloat(ns, 'f', 1, 64)
}

// Command figures regenerates every evaluation artifact of the paper
// (Figure 1 and the measured theorem tables E1–E12 indexed in
// EXPERIMENTS.md).
//
// Usage:
//
//	figures               # run everything, print text tables
//	figures -exp figure1  # run one experiment by name or id
//	figures -list         # list experiments
//	figures -csv dir      # additionally write one CSV per table into dir
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"ajdloss/internal/experiments"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		os.Exit(1)
	}
}

// run keeps tables on stdout; flag errors and usage go to stderr so that
// piped output stays machine-readable.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("figures", flag.ContinueOnError)
	fs.SetOutput(stderr)
	exp := fs.String("exp", "", "experiment id or name (default: all)")
	list := fs.Bool("list", false, "list available experiments")
	csvDir := fs.String("csv", "", "directory to write per-table CSV files")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		for _, s := range experiments.Registry() {
			fmt.Fprintf(stdout, "%-5s %-14s %s\n", s.ID, s.Name, s.Description)
		}
		return nil
	}

	specs := experiments.Registry()
	if *exp != "" {
		s, err := experiments.Lookup(*exp)
		if err != nil {
			return err
		}
		specs = []experiments.Spec{s}
	}
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			return err
		}
	}
	for _, s := range specs {
		fmt.Fprintf(stdout, "running %s (%s)...\n", s.ID, s.Name)
		table, err := s.Run()
		if err != nil {
			return fmt.Errorf("%s: %w", s.ID, err)
		}
		if err := table.WriteText(stdout); err != nil {
			return err
		}
		fmt.Fprintln(stdout)
		if *csvDir != "" {
			path := filepath.Join(*csvDir, s.Name+".csv")
			f, err := os.Create(path)
			if err != nil {
				return err
			}
			if err := table.WriteCSV(f); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Fprintf(stdout, "wrote %s\n\n", path)
		}
	}
	return nil
}

package main

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunList(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-list"}, &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"E1", "figure1", "E12", "compression"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("list missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunOneExperimentWithCSV(t *testing.T) {
	dir := t.TempDir()
	var out strings.Builder
	if err := run([]string{"-exp", "tightness", "-csv", dir}, &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Example 4.1") {
		t.Fatalf("output:\n%s", out.String())
	}
	data, err := os.ReadFile(filepath.Join(dir, "tightness.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "N,") {
		t.Fatalf("csv header: %q", string(data[:10]))
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-exp", "nope"}, &out, io.Discard); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

package main

import (
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

func TestRunDiscover(t *testing.T) {
	// A planted MVD C ->> A|B block instance: both discovery strategies
	// must find a lossless split.
	var rows strings.Builder
	rows.WriteString("A,B,C\n")
	for c := 1; c <= 3; c++ {
		for a := 1; a <= 2; a++ {
			for b := 1; b <= 2; b++ {
				rows.WriteString(
					strings.Join([]string{
						strconv.Itoa(10*c + a), strconv.Itoa(20*c + b), strconv.Itoa(c),
					}, ",") + "\n")
			}
		}
	}
	path := filepath.Join(t.TempDir(), "r.csv")
	if err := os.WriteFile(path, []byte(rows.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := run([]string{"-csv", path, "-target", "1e-9"}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"Chow-Liu", "recursive dissection", "approximate MVDs", "J=0.000000"} {
		if !strings.Contains(got, want) {
			t.Fatalf("output missing %q:\n%s", want, got)
		}
	}
}

func TestRunDiscoverErrors(t *testing.T) {
	var out strings.Builder
	if err := run(nil, &out); err == nil {
		t.Fatal("missing -csv did not error")
	}
	if err := run([]string{"-csv", "nope.csv"}, &out); err == nil {
		t.Fatal("missing file did not error")
	}
}

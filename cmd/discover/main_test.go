package main

import (
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

func TestRunDiscover(t *testing.T) {
	// A planted MVD C ->> A|B block instance: both discovery strategies
	// must find a lossless split.
	var rows strings.Builder
	rows.WriteString("A,B,C\n")
	for c := 1; c <= 3; c++ {
		for a := 1; a <= 2; a++ {
			for b := 1; b <= 2; b++ {
				rows.WriteString(
					strings.Join([]string{
						strconv.Itoa(10*c + a), strconv.Itoa(20*c + b), strconv.Itoa(c),
					}, ",") + "\n")
			}
		}
	}
	path := filepath.Join(t.TempDir(), "r.csv")
	if err := os.WriteFile(path, []byte(rows.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := run([]string{"-csv", path, "-target", "1e-9"}, &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"Chow-Liu", "recursive dissection", "approximate MVDs", "J=0.000000"} {
		if !strings.Contains(got, want) {
			t.Fatalf("output missing %q:\n%s", want, got)
		}
	}
}

func TestRunDiscoverErrors(t *testing.T) {
	var out strings.Builder
	if err := run(nil, &out, io.Discard); err == nil {
		t.Fatal("missing -csv did not error")
	}
	if err := run([]string{"-csv", "nope.csv"}, &out, io.Discard); err == nil {
		t.Fatal("missing file did not error")
	}
}

// Usage and flag errors belong on stderr; stdout must stay clean so that
// piped data output is never polluted by diagnostics.
func TestRunStreamSeparation(t *testing.T) {
	var stdout, stderr strings.Builder
	if err := run([]string{"-nope"}, &stdout, &stderr); err == nil {
		t.Fatal("unknown flag did not error")
	}
	if stdout.Len() != 0 {
		t.Fatalf("flag error leaked to stdout: %q", stdout.String())
	}
	if !strings.Contains(stderr.String(), "Usage") && !strings.Contains(stderr.String(), "-csv") {
		t.Fatalf("usage not on stderr: %q", stderr.String())
	}

	// Missing required flag prints usage to stderr, nothing to stdout.
	stdout.Reset()
	stderr.Reset()
	if err := run(nil, &stdout, &stderr); err == nil {
		t.Fatal("missing -csv did not error")
	}
	if stdout.Len() != 0 {
		t.Fatalf("usage leaked to stdout: %q", stdout.String())
	}
	if !strings.Contains(stderr.String(), "-csv") {
		t.Fatalf("usage not on stderr: %q", stderr.String())
	}
}

// A malformed CSV header must surface as a clean error naming the file —
// never a panic (the relation.New panic was reachable here before).
func TestRunDiscoverMalformedCSV(t *testing.T) {
	path := filepath.Join(t.TempDir(), "dup.csv")
	if err := os.WriteFile(path, []byte("A,B,A\n1,2,3\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var stdout, stderr strings.Builder
	err := run([]string{"-csv", path}, &stdout, &stderr)
	if err == nil {
		t.Fatal("duplicate-header CSV did not error")
	}
	msg := err.Error()
	if !strings.Contains(msg, "dup.csv") || !strings.Contains(msg, `duplicate attribute "A"`) {
		t.Fatalf("error = %q, want file name and duplicate attribute", msg)
	}
}

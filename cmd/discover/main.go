// Command discover mines approximate acyclic schemas from a CSV relation
// (the application motivating the paper, after Kenig et al. SIGMOD 2020):
// it reports the Chow-Liu tree schema, the coarsening path to a target
// J-measure, the recursive dissection, and the approximate MVDs found with
// small separators — each with its J-measure and measured spurious-tuple
// loss.
//
// Usage:
//
//	discover -csv data.csv [-target 0.01] [-maxsep 1] [-noheader]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"ajdloss/internal/core"
	"ajdloss/internal/discovery"
	"ajdloss/internal/jointree"
	"ajdloss/internal/relation"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "discover:", err)
		os.Exit(1)
	}
}

// run keeps data output on stdout; flag errors and usage go to stderr so
// that piped output stays machine-readable.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("discover", flag.ContinueOnError)
	fs.SetOutput(stderr)
	csvPath := fs.String("csv", "", "CSV file containing the relation instance (required)")
	target := fs.Float64("target", 0.01, "J-measure target in nats")
	maxSep := fs.Int("maxsep", 1, "maximum MVD separator size")
	noHeader := fs.Bool("noheader", false, "CSV has no header row")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *csvPath == "" {
		fs.Usage()
		return fmt.Errorf("-csv is required")
	}
	f, err := os.Open(*csvPath)
	if err != nil {
		return err
	}
	defer f.Close()
	r, _, err := relation.ReadCSV(f, !*noHeader)
	if err != nil {
		return fmt.Errorf("reading %s: %w", *csvPath, err)
	}
	fmt.Fprintf(stdout, "relation: %d tuples over %s\n\n", r.N(), strings.Join(r.Attrs(), ", "))

	cl, err := discovery.ChowLiu(r)
	if err != nil {
		return err
	}
	if err := report(stdout, "Chow-Liu tree schema", r, cl); err != nil {
		return err
	}

	path, err := discovery.Coarsen(r, cl.Tree, *target)
	if err != nil {
		return err
	}
	best := path[len(path)-1]
	if len(path) > 1 {
		if err := report(stdout, fmt.Sprintf("coarsened to J <= %g (%d contractions)", *target, len(path)-1), r, best); err != nil {
			return err
		}
	}

	dis, err := discovery.Dissect(r, discovery.DissectConfig{MaxSep: *maxSep, Threshold: *target})
	if err != nil {
		return err
	}
	if err := report(stdout, "recursive dissection", r, dis); err != nil {
		return err
	}

	mvds, err := discovery.FindMVDs(r, *maxSep, *target)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "approximate MVDs (separator size <= %d, threshold %g): %d found\n", *maxSep, *target, len(mvds))
	for i, m := range mvds {
		if i >= 10 {
			fmt.Fprintf(stdout, "  ... (%d more)\n", len(mvds)-10)
			break
		}
		schema, err := jointree.MVDSchema(m.X, m.Groups...)
		if err != nil {
			return err
		}
		loss, err := core.ComputeLoss(r, schema)
		if err != nil {
			return err
		}
		var groups []string
		for _, g := range m.Groups {
			groups = append(groups, strings.Join(g, ","))
		}
		fmt.Fprintf(stdout, "  {%s} ->> %s  J=%.6f rho=%.6f\n", strings.Join(m.X, ","), strings.Join(groups, " | "), m.J, loss.Rho)
	}
	return nil
}

func report(w io.Writer, title string, r *relation.Relation, c discovery.Candidate) error {
	loss, err := core.ComputeLossTree(r, c.Tree)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%s:\n  schema %s\n  J=%.6f nats  rho=%.6f  spurious=%d  (Lemma 4.1: rho >= %.6f)\n\n",
		title, c.Schema(), c.J, loss.Rho, loss.Spurious, core.RhoLowerBound(c.J))
	return nil
}

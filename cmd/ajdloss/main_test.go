package main

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeCSV(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "r.csv")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunAnalyze(t *testing.T) {
	path := writeCSV(t, "A,B\n1,1\n2,2\n3,3\n")
	var out strings.Builder
	if err := run([]string{"-csv", path, "-schema", "A;B"}, &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"spurious tuples   6", "J-measure", "lossless          false"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("output missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunErrors(t *testing.T) {
	path := writeCSV(t, "A,B\n1,1\n")
	var out strings.Builder
	cases := [][]string{
		{},                                       // missing flags
		{"-csv", "nope.csv", "-schema", "A;B"},   // missing file
		{"-csv", path, "-schema", ""},            // empty schema (missing flag)
		{"-csv", path, "-schema", "A,B;B,C;C,A"}, // unknown attr / cyclic
	}
	for i, args := range cases {
		if err := run(args, &out, io.Discard); err == nil {
			t.Errorf("case %d (%v) did not error", i, args)
		}
	}
	// Cyclic schema over present attributes.
	tri := writeCSV(t, "A,B,C\n1,1,1\n")
	if err := run([]string{"-csv", tri, "-schema", "A,B;B,C;C,A"}, &out, io.Discard); err == nil {
		t.Error("cyclic schema did not error")
	}
}

// Usage and flag errors belong on stderr; the report is the only thing
// written to stdout.
func TestRunStreamSeparation(t *testing.T) {
	var stdout, stderr strings.Builder
	if err := run([]string{"-bogus"}, &stdout, &stderr); err == nil {
		t.Fatal("unknown flag did not error")
	}
	if stdout.Len() != 0 {
		t.Fatalf("flag error leaked to stdout: %q", stdout.String())
	}
	if !strings.Contains(stderr.String(), "-schema") {
		t.Fatalf("usage not on stderr: %q", stderr.String())
	}
}

// Malformed CSV headers come back as errors naming the file, not panics.
func TestRunMalformedCSV(t *testing.T) {
	path := writeCSV(t, "A,,B\n1,2,3\n")
	var out strings.Builder
	err := run([]string{"-csv", path, "-schema", "A;B"}, &out, io.Discard)
	if err == nil {
		t.Fatal("empty-header CSV did not error")
	}
	if !strings.Contains(err.Error(), "empty attribute name") {
		t.Fatalf("error = %q, want empty attribute name", err)
	}
}

func TestRunNoHeader(t *testing.T) {
	path := writeCSV(t, "1,1\n2,2\n")
	var out strings.Builder
	if err := run([]string{"-csv", path, "-schema", "c1;c2", "-noheader"}, &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "spurious tuples   2") {
		t.Fatalf("output:\n%s", out.String())
	}
}

// Command ajdloss analyzes the loss of an acyclic schema against a CSV
// relation: the J-measure, the KL divergence to the join-tree factorization,
// the spurious-tuple count, and every bound the paper proves between them.
//
// Usage:
//
//	ajdloss -csv data.csv -schema "A,B;B,C"        # bags separated by ';'
//	ajdloss -csv data.csv -schema "A,B;B,C" -noheader
//
// The schema string lists bags separated by ';', attributes within a bag
// separated by ','. Attribute names come from the CSV header (or c1..ck
// with -noheader).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"ajdloss/internal/core"
	"ajdloss/internal/jointree"
	"ajdloss/internal/relation"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "ajdloss:", err)
		os.Exit(1)
	}
}

// run keeps the report on stdout; flag errors and usage go to stderr so
// that piped output stays machine-readable.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("ajdloss", flag.ContinueOnError)
	fs.SetOutput(stderr)
	csvPath := fs.String("csv", "", "CSV file containing the relation instance (required)")
	schemaArg := fs.String("schema", "", `schema bags, e.g. "A,B;B,C" (required)`)
	noHeader := fs.Bool("noheader", false, "CSV has no header row; attributes are c1..ck")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *csvPath == "" || *schemaArg == "" {
		fs.Usage()
		return fmt.Errorf("-csv and -schema are required")
	}
	f, err := os.Open(*csvPath)
	if err != nil {
		return err
	}
	defer f.Close()
	r, _, err := relation.ReadCSV(f, !*noHeader)
	if err != nil {
		return fmt.Errorf("reading %s: %w", *csvPath, err)
	}
	schema, err := jointree.ParseSchema(*schemaArg)
	if err != nil {
		return err
	}
	if !jointree.IsAcyclic(schema) {
		return fmt.Errorf("schema %s is cyclic; only acyclic schemas have join trees", schema)
	}
	rep, err := core.Analyze(r, schema)
	if err != nil {
		return err
	}
	fmt.Fprint(stdout, rep)
	if err := rep.Verify(1e-6); err != nil {
		return fmt.Errorf("internal consistency check failed: %w", err)
	}
	return nil
}

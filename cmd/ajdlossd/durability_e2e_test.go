package main

import (
	"bufio"
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// The durability e2e needs a real process to SIGKILL — a cancelled context
// is a graceful shutdown, which is exactly what the test must NOT exercise.
// TestMain re-execs the test binary as the daemon when the marker env var is
// set; the test then kills that child at full speed and restarts it.
func TestMain(m *testing.M) {
	if os.Getenv("AJDLOSSD_E2E_CHILD") == "1" {
		if err := run(context.Background(), os.Args[1:], os.Stdout, os.Stderr, nil); err != nil {
			fmt.Fprintln(os.Stderr, "ajdlossd child:", err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// childDaemon execs the test binary as an ajdlossd child process and returns
// its base URL and a kill function (SIGKILL, then reap).
func childDaemon(t *testing.T, args ...string) (string, func()) {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(exe, append([]string{"-addr", "127.0.0.1:0"}, args...)...)
	cmd.Env = append(os.Environ(), "AJDLOSSD_E2E_CHILD=1")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = io.Discard
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	kill := func() {
		cmd.Process.Kill()
		cmd.Wait()
	}
	// The ready line is "ajdlossd listening on http://ADDR".
	lines := bufio.NewScanner(stdout)
	readyc := make(chan string, 1)
	go func() {
		for lines.Scan() {
			if _, url, ok := strings.Cut(lines.Text(), "listening on "); ok {
				readyc <- url
				return
			}
		}
		close(readyc)
	}()
	select {
	case url, ok := <-readyc:
		if !ok {
			kill()
			t.Fatal("child exited before ready")
		}
		return url, kill
	case <-time.After(30 * time.Second):
		kill()
		t.Fatal("child daemon never became ready")
	}
	panic("unreachable")
}

func httpGetBody(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 200 {
		t.Fatalf("GET %s: %d %s", url, resp.StatusCode, body)
	}
	return body
}

func httpPostBody(t *testing.T, url, contentType string, body []byte) []byte {
	t.Helper()
	resp, err := http.Post(url, contentType, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 200 && resp.StatusCode != 201 {
		t.Fatalf("POST %s: %d %s", url, resp.StatusCode, out)
	}
	return out
}

// TestDurabilityKillRestart is the restart round-trip acceptance test: an
// ajdlossd with -data is fed concurrent appends (plus a mid-stream manual
// checkpoint, so recovery exercises checkpoint + WAL tail), SIGKILLed, and
// restarted — every dataset must come back at its exact pre-kill rows and
// generation, and /analyze + /batch responses must be byte-identical to the
// pre-kill warm answers.
func TestDurabilityKillRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns child processes")
	}
	dir := t.TempDir()
	dataDir := filepath.Join(dir, "data")
	csv := filepath.Join(dir, "block.csv")
	var rows strings.Builder
	rows.WriteString("A,B,C\n")
	for c := 1; c <= 3; c++ {
		for a := 1; a <= 2; a++ {
			for b := 1; b <= 2; b++ {
				fmt.Fprintf(&rows, "%d,%d,%d\n", 10*c+a, 100*c+b, c)
			}
		}
	}
	if err := os.WriteFile(csv, []byte(rows.String()), 0o644); err != nil {
		t.Fatal(err)
	}

	base, kill := childDaemon(t, "-data", dataDir, "-load", "block="+csv)
	// Concurrent appenders: disjoint single-row batches, every one
	// acknowledged before the kill.
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				body := fmt.Sprintf("%d,%d,%d\n", 1000+10*g+i, 2000+10*g+i, 7+g)
				httpPostBody(t, base+"/datasets/block/append", "text/csv", []byte(body))
			}
		}(g)
	}
	wg.Wait()
	// Mid-stream checkpoint, then more appends: the WAL now holds only a
	// tail beyond the checkpoint.
	httpPostBody(t, base+"/datasets/block/checkpoint", "", nil)
	for i := 0; i < 4; i++ {
		body := fmt.Sprintf("%d,%d,%d\n", 3000+i, 4000+i, 5)
		httpPostBody(t, base+"/datasets/block/append", "text/csv", []byte(body))
	}

	analyzeURL := base + "/analyze?dataset=block&schema=A,C|B,C"
	batchBody := []byte(`{"dataset":"block","queries":[
		{"kind":"entropy","attrs":["A","B","C"]},
		{"kind":"cmi","a":["A"],"b":["B"],"given":["C"]},
		{"kind":"fd","x":["C"],"y":["A"]},
		{"kind":"distinct","attrs":["A","B"]}]}`)
	wantAnalyze := httpGetBody(t, analyzeURL)
	wantBatch := httpPostBody(t, base+"/batch", "application/json", batchBody)
	wantStats := httpGetBody(t, base+"/datasets")

	kill() // SIGKILL: no drain, no shutdown checkpoint

	// Restart over the same -data; -load must defer to the recovered state.
	base2, kill2 := childDaemon(t, "-data", dataDir, "-load", "block="+csv)
	defer kill2()
	gotStats := httpGetBody(t, base2+"/datasets")
	stripTimes := func(b []byte) string {
		var sb strings.Builder
		for _, line := range strings.Split(string(b), "\n") {
			if !strings.Contains(line, "registered_at") {
				sb.WriteString(line)
				sb.WriteByte('\n')
			}
		}
		return sb.String()
	}
	if stripTimes(gotStats) != stripTimes(wantStats) {
		t.Fatalf("recovered /datasets differs:\n got %s\nwant %s", gotStats, wantStats)
	}
	gotAnalyze := httpGetBody(t, base2+"/analyze?dataset=block&schema=A,C|B,C")
	if !bytes.Equal(gotAnalyze, wantAnalyze) {
		t.Fatalf("recovered /analyze not byte-identical:\n got %s\nwant %s", gotAnalyze, wantAnalyze)
	}
	gotBatch := httpPostBody(t, base2+"/batch", "application/json", batchBody)
	if !bytes.Equal(gotBatch, wantBatch) {
		t.Fatalf("recovered /batch not byte-identical:\n got %s\nwant %s", gotBatch, wantBatch)
	}
	// The recovered dataset keeps accepting appends on the same chain.
	out := httpPostBody(t, base2+"/datasets/block/append", "text/csv", []byte("9991,9992,9\n"))
	if !bytes.Contains(out, []byte(`"appended": 1`)) {
		t.Fatalf("post-recovery append: %s", out)
	}
}

package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// startDaemon runs the daemon against a free port with a preloaded dataset
// and returns its base URL plus a shutdown function that asserts a clean,
// graceful exit.
func startDaemon(t *testing.T, extraArgs ...string) (string, func() error) {
	t.Helper()
	csv := filepath.Join(t.TempDir(), "block.csv")
	var rows strings.Builder
	rows.WriteString("A,B,C\n")
	for c := 1; c <= 3; c++ {
		for a := 1; a <= 2; a++ {
			for b := 1; b <= 2; b++ {
				fmt.Fprintf(&rows, "%d,%d,%d\n", 10*c+a, 100*c+b, c)
			}
		}
	}
	if err := os.WriteFile(csv, []byte(rows.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	addrc := make(chan net.Addr, 1)
	errc := make(chan error, 1)
	args := append([]string{"-addr", "127.0.0.1:0", "-load", "block=" + csv}, extraArgs...)
	go func() {
		errc <- run(ctx, args, io.Discard, io.Discard, func(a net.Addr) { addrc <- a })
	}()
	select {
	case addr := <-addrc:
		return "http://" + addr.String(), func() error {
			cancel()
			select {
			case err := <-errc:
				return err
			case <-time.After(5 * time.Second):
				return fmt.Errorf("daemon did not shut down")
			}
		}
	case err := <-errc:
		t.Fatalf("daemon exited before ready: %v", err)
	case <-time.After(5 * time.Second):
		t.Fatal("daemon never became ready")
	}
	panic("unreachable")
}

func getJSON(t *testing.T, url string) map[string]any {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("GET %s: %d %s", url, resp.StatusCode, body)
	}
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestDaemonEndToEnd boots the daemon with a preloaded dataset, serves
// concurrent mixed requests against the live listener, and shuts down
// gracefully.
func TestDaemonEndToEnd(t *testing.T) {
	base, shutdown := startDaemon(t)

	if got := getJSON(t, base+"/healthz"); got["status"] != "ok" {
		t.Fatalf("healthz: %v", got)
	}
	datasets := getJSON(t, base+"/datasets")["datasets"].([]any)
	if len(datasets) != 1 || datasets[0].(map[string]any)["name"] != "block" {
		t.Fatalf("preload missing: %v", datasets)
	}

	// Concurrent mixed load against the live server.
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				switch (g + i) % 3 {
				case 0:
					rep := getJSON(t, base+"/analyze?dataset=block&schema=A,C|B,C")
					if rep["lossless"] != true {
						t.Errorf("analyze: %v", rep)
					}
				case 1:
					ent := getJSON(t, base+"/entropy?dataset=block&a=A&b=B&given=C")
					if ent["nats"].(float64) > 1e-9 {
						t.Errorf("CMI: %v", ent)
					}
				case 2:
					dis := getJSON(t, base+"/discover?dataset=block&target=1e-9&maxsep=1")
					if len(dis["mvds"].([]any)) == 0 {
						t.Errorf("discover: %v", dis)
					}
				}
			}
		}(g)
	}
	wg.Wait()

	stats := getJSON(t, base+"/stats")
	if stats["requests"].(float64) < 40 || stats["errors"].(float64) != 0 {
		t.Fatalf("stats: %v", stats)
	}
	// Dedup really happened: far fewer computations than requests.
	if stats["computed"].(float64) >= stats["requests"].(float64) {
		t.Fatalf("no dedup: %v", stats)
	}

	if err := shutdown(); err != nil {
		t.Fatalf("graceful shutdown: %v", err)
	}
}

func TestDaemonBadFlags(t *testing.T) {
	ctx := context.Background()
	var stderr strings.Builder
	if err := run(ctx, []string{"-nope"}, io.Discard, &stderr, nil); err == nil {
		t.Fatal("unknown flag accepted")
	}
	if !strings.Contains(stderr.String(), "-addr") {
		t.Fatalf("usage not on stderr: %q", stderr.String())
	}
	if err := run(ctx, []string{"-load", "nopath"}, io.Discard, io.Discard, nil); err == nil {
		t.Fatal("bad -load accepted")
	}
	if err := run(ctx, []string{"-load", "x=/does/not/exist.csv"}, io.Discard, io.Discard, nil); err == nil {
		t.Fatal("missing preload file accepted")
	}
	// A malformed preload CSV must fail startup with the ingestion error.
	dir := os.TempDir()
	bad := filepath.Join(dir, "ajdlossd_bad_header.csv")
	if err := os.WriteFile(bad, []byte("A,A\n1,2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	defer os.Remove(bad)
	err := run(ctx, []string{"-load", "x=" + bad}, io.Discard, io.Discard, nil)
	if err == nil || !strings.Contains(err.Error(), "duplicate attribute") {
		t.Fatalf("malformed preload error = %v", err)
	}
}

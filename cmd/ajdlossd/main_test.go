package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// startDaemon runs the daemon against a free port with a preloaded dataset
// and returns its base URL plus a shutdown function that asserts a clean,
// graceful exit.
func startDaemon(t *testing.T, extraArgs ...string) (string, func() error) {
	t.Helper()
	csv := filepath.Join(t.TempDir(), "block.csv")
	var rows strings.Builder
	rows.WriteString("A,B,C\n")
	for c := 1; c <= 3; c++ {
		for a := 1; a <= 2; a++ {
			for b := 1; b <= 2; b++ {
				fmt.Fprintf(&rows, "%d,%d,%d\n", 10*c+a, 100*c+b, c)
			}
		}
	}
	if err := os.WriteFile(csv, []byte(rows.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	args := append([]string{"-addr", "127.0.0.1:0", "-load", "block=" + csv}, extraArgs...)
	return bootDaemon(t, args)
}

// bootDaemon runs the daemon with the given args until it is ready and
// returns its base URL plus a shutdown function asserting a graceful exit.
func bootDaemon(t *testing.T, args []string) (string, func() error) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	addrc := make(chan net.Addr, 1)
	errc := make(chan error, 1)
	go func() {
		errc <- run(ctx, args, io.Discard, io.Discard, func(a net.Addr) { addrc <- a })
	}()
	// Generous bounds: under -race with several packages' tests running in
	// parallel, a loaded machine can stretch daemon boot well past a few
	// seconds — a genuine hang is forever, so the slack costs nothing.
	select {
	case addr := <-addrc:
		return "http://" + addr.String(), func() error {
			cancel()
			select {
			case err := <-errc:
				return err
			case <-time.After(30 * time.Second):
				return fmt.Errorf("daemon did not shut down")
			}
		}
	case err := <-errc:
		t.Fatalf("daemon exited before ready: %v", err)
	case <-time.After(30 * time.Second):
		t.Fatal("daemon never became ready")
	}
	panic("unreachable")
}

func getJSON(t *testing.T, url string) map[string]any {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("GET %s: %d %s", url, resp.StatusCode, body)
	}
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestDaemonEndToEnd boots the daemon with a preloaded dataset, serves
// concurrent mixed requests against the live listener, and shuts down
// gracefully.
func TestDaemonEndToEnd(t *testing.T) {
	base, shutdown := startDaemon(t)

	if got := getJSON(t, base+"/healthz"); got["status"] != "ok" {
		t.Fatalf("healthz: %v", got)
	}
	datasets := getJSON(t, base+"/datasets")["datasets"].([]any)
	if len(datasets) != 1 || datasets[0].(map[string]any)["name"] != "block" {
		t.Fatalf("preload missing: %v", datasets)
	}

	// Concurrent mixed load against the live server.
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				switch (g + i) % 3 {
				case 0:
					rep := getJSON(t, base+"/analyze?dataset=block&schema=A,C|B,C")
					if rep["lossless"] != true {
						t.Errorf("analyze: %v", rep)
					}
				case 1:
					ent := getJSON(t, base+"/entropy?dataset=block&a=A&b=B&given=C")
					if ent["nats"].(float64) > 1e-9 {
						t.Errorf("CMI: %v", ent)
					}
				case 2:
					dis := getJSON(t, base+"/discover?dataset=block&target=1e-9&maxsep=1")
					if len(dis["mvds"].([]any)) == 0 {
						t.Errorf("discover: %v", dis)
					}
				}
			}
		}(g)
	}
	wg.Wait()

	stats := getJSON(t, base+"/stats")
	if stats["requests"].(float64) < 40 || stats["errors"].(float64) != 0 {
		t.Fatalf("stats: %v", stats)
	}
	// Dedup really happened: far fewer computations than requests.
	if stats["computed"].(float64) >= stats["requests"].(float64) {
		t.Fatalf("no dedup: %v", stats)
	}

	if err := shutdown(); err != nil {
		t.Fatalf("graceful shutdown: %v", err)
	}
}

// TestDaemonWatch: a -watch dataset streams rows appended to its CSV file
// into the live daemon — the row count and generation advance without a
// restart, and analysis responses echo the new generation.
func TestDaemonWatch(t *testing.T) {
	csvPath := filepath.Join(t.TempDir(), "w.csv")
	if err := os.WriteFile(csvPath, []byte("A,B\n1,1\n2,2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	// -watch-tail-polls is huge so the stable-tail path never fires: this
	// test pins the complete-lines-only behavior for a file that is still
	// being written (TestDaemonWatchStableTail covers the other side).
	base, shutdown := bootDaemon(t, []string{
		"-addr", "127.0.0.1:0", "-watch", "w=" + csvPath, "-watch-interval", "25ms",
		"-watch-tail-polls", "100000"})

	datasets := getJSON(t, base+"/datasets")["datasets"].([]any)
	info := datasets[0].(map[string]any)
	if info["name"] != "w" || info["rows"] != float64(2) || info["generation"] != float64(1) {
		t.Fatalf("initial watch load: %v", info)
	}

	// The producer appends lines to the file — including a torn final line
	// ("5," has the right field count for a truncated "5,5\n" but no
	// newline yet). The daemon must absorb the complete lines and leave the
	// torn one on disk.
	f, err := os.OpenFile(csvPath, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("3,3\n4,4\n5,"); err != nil {
		t.Fatal(err)
	}
	f.Close()

	deadline := time.Now().Add(10 * time.Second)
	for {
		info := getJSON(t, base+"/datasets")["datasets"].([]any)[0].(map[string]any)
		if info["rows"] == float64(4) && info["generation"] == float64(2) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("watched rows never appeared: %v", info)
		}
		time.Sleep(25 * time.Millisecond)
	}

	// Completing the torn line makes exactly the row "5,5" appear — if the
	// watcher had parsed the fragment early, a bogus row would inflate the
	// count past 5.
	f, err = os.OpenFile(csvPath, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("5\n"); err != nil {
		t.Fatal(err)
	}
	f.Close()
	for {
		info := getJSON(t, base+"/datasets")["datasets"].([]any)[0].(map[string]any)
		if info["rows"] == float64(5) && info["generation"] == float64(3) {
			break
		}
		if info["rows"].(float64) > 5 {
			t.Fatalf("torn line ingested: %v", info)
		}
		if time.Now().After(deadline) {
			t.Fatalf("completed torn line never appeared: %v", info)
		}
		time.Sleep(25 * time.Millisecond)
	}

	// A permanently malformed line (ragged, then an unparseable bare quote)
	// must not wedge the watcher: bad rows are dropped or skipped, and rows
	// appended after them still stream in.
	f, err = os.OpenFile(csvPath, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("ragged\n6,6\n"); err != nil { // ragged + good, same chunk
		t.Fatal(err)
	}
	f.Close()
	waitRows := func(want float64) {
		t.Helper()
		for {
			info := getJSON(t, base+"/datasets")["datasets"].([]any)[0].(map[string]any)
			if info["rows"] == want {
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("rows never reached %v: %v", want, info)
			}
			time.Sleep(25 * time.Millisecond)
		}
	}
	waitRows(6) // "6,6" landed, "ragged" dropped
	f, err = os.OpenFile(csvPath, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("a\"b,7\n"); err != nil { // unparseable chunk
		t.Fatal(err)
	}
	f.Close()
	// The watcher retries an unparseable chunk a few ticks (it could be a
	// torn quoted field) before skipping it; leave room for that.
	time.Sleep(time.Second)
	f, err = os.OpenFile(csvPath, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("8,8\n"); err != nil { // must still stream in
		t.Fatal(err)
	}
	f.Close()
	waitRows(7)
	ent := getJSON(t, base+"/entropy?dataset=w&attrs=A")
	if ent["generation"] != float64(5) || ent["rows"] != float64(7) {
		t.Fatalf("entropy after watch append: %v", ent)
	}
	// The watcher dropped the "ragged" row and skipped the unparseable
	// `a"b,7` line: both must be counted in /stats, per dataset, not only
	// logged to stderr.
	stats := getJSON(t, base+"/stats")
	skipped, ok := stats["skipped_lines"].(map[string]any)
	if !ok || skipped["w"] != float64(2) {
		t.Fatalf("skipped_lines = %v, want {w: 2} (stats: %v)", stats["skipped_lines"], stats)
	}
	if err := shutdown(); err != nil {
		t.Fatalf("graceful shutdown: %v", err)
	}
}

// TestDaemonWatchReplace: atomically replacing the watched file with
// different, larger content must not be tailed from the stale offset (which
// would ingest mid-row fragments as phantom rows); the watcher detects the
// broken newline sentinel and re-reads from the top.
func TestDaemonWatchReplace(t *testing.T) {
	dir := t.TempDir()
	csvPath := filepath.Join(dir, "w.csv")
	if err := os.WriteFile(csvPath, []byte("A,B\n1,1\n2,2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	base, shutdown := bootDaemon(t, []string{
		"-addr", "127.0.0.1:0", "-watch", "w=" + csvPath, "-watch-interval", "25ms"})

	// Replace with larger content that does NOT have a newline at the old
	// offset boundary; rows are a superset plus fresh ones.
	next := filepath.Join(dir, "next.csv")
	if err := os.WriteFile(next, []byte("A,B\n10,10\n20,20\n30,30\n40,40\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Rename(next, csvPath); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		info := getJSON(t, base+"/datasets")["datasets"].([]any)[0].(map[string]any)
		// Old rows stay (appends are add-only); all four new rows must land
		// exactly once: 2 + 4 = 6.
		if info["rows"] == float64(6) {
			break
		}
		if info["rows"].(float64) > 6 {
			t.Fatalf("phantom rows ingested after replacement: %v", info)
		}
		if time.Now().After(deadline) {
			t.Fatalf("replacement content never ingested: %v", info)
		}
		time.Sleep(25 * time.Millisecond)
	}
	if err := shutdown(); err != nil {
		t.Fatalf("graceful shutdown: %v", err)
	}
}

// TestDaemonWatchListenFailure: with -watch active, a listener that cannot
// bind must surface the error immediately — run() must not hang behind the
// still-ticking watch goroutine.
func TestDaemonWatchListenFailure(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	csvPath := filepath.Join(t.TempDir(), "w.csv")
	if err := os.WriteFile(csvPath, []byte("A,B\n1,1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() {
		errc <- run(context.Background(),
			[]string{"-addr", ln.Addr().String(), "-watch", "w=" + csvPath},
			io.Discard, io.Discard, nil)
	}()
	select {
	case err := <-errc:
		if err == nil {
			t.Fatal("bind conflict not reported")
		}
	// A real hang is forever; the generous bound just keeps slow loaded
	// machines from flaking the distinction.
	case <-time.After(30 * time.Second):
		t.Fatal("run() hung behind the watch goroutine on listener failure")
	}
}

func TestDaemonBadFlags(t *testing.T) {
	ctx := context.Background()
	var stderr strings.Builder
	if err := run(ctx, []string{"-nope"}, io.Discard, &stderr, nil); err == nil {
		t.Fatal("unknown flag accepted")
	}
	if !strings.Contains(stderr.String(), "-addr") {
		t.Fatalf("usage not on stderr: %q", stderr.String())
	}
	if err := run(ctx, []string{"-load", "nopath"}, io.Discard, io.Discard, nil); err == nil {
		t.Fatal("bad -load accepted")
	}
	// A non-positive poll interval would panic time.NewTicker in the watch
	// goroutine; it must be rejected at startup instead.
	if err := run(ctx, []string{"-watch", "w=x.csv", "-watch-interval", "0s"}, io.Discard, io.Discard, nil); err == nil ||
		!strings.Contains(err.Error(), "watch-interval") {
		t.Fatalf("non-positive -watch-interval accepted: %v", err)
	}
	if err := run(ctx, []string{"-load", "x=/does/not/exist.csv"}, io.Discard, io.Discard, nil); err == nil {
		t.Fatal("missing preload file accepted")
	}
	// A malformed preload CSV must fail startup with the ingestion error.
	dir := os.TempDir()
	bad := filepath.Join(dir, "ajdlossd_bad_header.csv")
	if err := os.WriteFile(bad, []byte("A,A\n1,2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	defer os.Remove(bad)
	err := run(ctx, []string{"-load", "x=" + bad}, io.Discard, io.Discard, nil)
	if err == nil || !strings.Contains(err.Error(), "duplicate attribute") {
		t.Fatalf("malformed preload error = %v", err)
	}
	if err := run(ctx, []string{"-cache", "-1"}, io.Discard, io.Discard, nil); err == nil ||
		!strings.Contains(err.Error(), "-cache") {
		t.Fatalf("negative -cache accepted: %v", err)
	}
	if err := run(ctx, []string{"-quota-rows", "-5"}, io.Discard, io.Discard, nil); err == nil ||
		!strings.Contains(err.Error(), "quota") {
		t.Fatalf("negative -quota-rows accepted: %v", err)
	}
	if err := run(ctx, []string{"-default-ns", "Bad NS"}, io.Discard, io.Discard, nil); err == nil ||
		!strings.Contains(err.Error(), "-default-ns") {
		t.Fatalf("invalid -default-ns accepted: %v", err)
	}
}

// TestDaemonNamespaceFlags: -default-ns points the legacy routes at a named
// namespace and -quota-datasets/-quota-rows apply to every namespace, with
// over-quota requests rejected as 429.
func TestDaemonNamespaceFlags(t *testing.T) {
	base, shutdown := startDaemon(t, "-default-ns", "tenant-x", "-quota-datasets", "2", "-quota-rows", "100")

	if got := getJSON(t, base+"/v1/namespaces"); got["default"] != "tenant-x" {
		t.Fatalf("default namespace: %v", got)
	}
	// The -load preload landed in the default namespace, so the legacy alias
	// and /v1/tenant-x see the same dataset.
	v1 := getJSON(t, base+"/v1/tenant-x/datasets")["datasets"].([]any)
	if len(v1) != 1 || v1[0].(map[string]any)["name"] != "block" {
		t.Fatalf("/v1/tenant-x/datasets: %v", v1)
	}

	post := func(path, body string) int {
		resp, err := http.Post(base+path, "text/csv", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	// Second dataset fits the 2-dataset quota; a third does not.
	if code := post("/datasets?name=two", "A,B\n1,2\n"); code != http.StatusCreated {
		t.Fatalf("second dataset: %d", code)
	}
	if code := post("/datasets?name=three", "A,B\n1,2\n"); code != http.StatusTooManyRequests {
		t.Fatalf("over dataset quota: got %d, want 429", code)
	}
	// Another namespace gets its own fresh quota.
	if code := post("/v1/other/datasets?name=three", "A,B\n1,2\n"); code != http.StatusCreated {
		t.Fatalf("fresh namespace register: %d", code)
	}
	// 13 rows are in tenant-x; an append pushing past -quota-rows 100 is
	// rejected and leaves the dataset untouched.
	var big strings.Builder
	for i := 0; i < 100; i++ {
		fmt.Fprintf(&big, "%d,%d,%d\n", 1000+i, 2000+i, 7)
	}
	if code := post("/datasets/block/append", big.String()); code != http.StatusTooManyRequests {
		t.Fatalf("over row quota: got %d, want 429", code)
	}
	if got := getJSON(t, base+"/v1/tenant-x/stats"); got["rows"] != float64(13) {
		t.Fatalf("rows after rejected append: %v", got["rows"])
	}

	if err := shutdown(); err != nil {
		t.Fatalf("graceful shutdown: %v", err)
	}
}

package main

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// syncBuffer is a concurrency-safe writer the tests hand to run() as stderr
// so they can assert on watcher log lines while the daemon is live.
type syncBuffer struct {
	mu sync.Mutex
	sb strings.Builder
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.sb.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.sb.String()
}

// bootDaemonStderr is bootDaemon with a caller-supplied stderr.
func bootDaemonStderr(t *testing.T, args []string, stderr io.Writer) (string, func() error) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	addrc := make(chan net.Addr, 1)
	errc := make(chan error, 1)
	go func() {
		errc <- run(ctx, args, io.Discard, stderr, func(a net.Addr) { addrc <- a })
	}()
	select {
	case addr := <-addrc:
		return "http://" + addr.String(), func() error {
			cancel()
			select {
			case err := <-errc:
				return err
			case <-time.After(30 * time.Second):
				return fmt.Errorf("daemon did not shut down")
			}
		}
	case err := <-errc:
		t.Fatalf("daemon exited before ready: %v", err)
	case <-time.After(30 * time.Second):
		t.Fatal("daemon never became ready")
	}
	panic("unreachable")
}

// TestDaemonWatchReplaceNewlineAligned is the regression for the stale-offset
// bug: the watched file is atomically replaced by different equal-or-larger
// content whose byte at the old offset-1 HAPPENS to be a newline. The old
// newline-byte sentinel was satisfied and silently tailed garbage from the
// stale offset (losing the replacement's earlier rows); the content sentinel
// must detect the swap and re-read from the top.
func TestDaemonWatchReplaceNewlineAligned(t *testing.T) {
	dir := t.TempDir()
	csvPath := filepath.Join(dir, "w.csv")
	// 12 bytes: offset after load is 12, byte 11 is '\n'.
	if err := os.WriteFile(csvPath, []byte("A,B\n1,1\n2,2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	base, shutdown := bootDaemon(t, []string{
		"-addr", "127.0.0.1:0", "-watch", "w=" + csvPath, "-watch-interval", "25ms"})

	// Replacement: byte 11 is '\n' again ("A,B\n" + "7,7\n" + "8,8\n" is 12
	// bytes), the file is larger, and the rows before the old offset differ.
	// Tailing from offset 12 would ingest only "9,9" and silently lose 7,7
	// and 8,8.
	next := filepath.Join(dir, "next.csv")
	if err := os.WriteFile(next, []byte("A,B\n7,7\n8,8\n9,9\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Rename(next, csvPath); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		info := getJSON(t, base+"/datasets")["datasets"].([]any)[0].(map[string]any)
		// 2 original + all 3 replacement rows, exactly once.
		if info["rows"] == float64(5) {
			break
		}
		if info["rows"].(float64) > 5 {
			t.Fatalf("phantom rows after newline-aligned replacement: %v", info)
		}
		if time.Now().After(deadline) {
			t.Fatalf("replacement rows never fully ingested (stale-offset tail?): %v", info)
		}
		time.Sleep(25 * time.Millisecond)
	}
	if err := shutdown(); err != nil {
		t.Fatalf("graceful shutdown: %v", err)
	}
}

// TestDaemonWatchRemovedDataset: DELETE of a watched dataset must stop the
// watcher — one stderr line, then silence — instead of erroring on every
// poll forever.
func TestDaemonWatchRemovedDataset(t *testing.T) {
	dir := t.TempDir()
	csvPath := filepath.Join(dir, "w.csv")
	if err := os.WriteFile(csvPath, []byte("A,B\n1,1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var stderr syncBuffer
	base, shutdown := bootDaemonStderr(t, []string{
		"-addr", "127.0.0.1:0", "-watch", "w=" + csvPath, "-watch-interval", "25ms"}, &stderr)

	req, _ := http.NewRequest(http.MethodDelete, base+"/datasets/w", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("DELETE status %d", resp.StatusCode)
	}
	// Keep feeding the file: a stopped watcher must produce no more output
	// and no /stats errors; the old behavior logged an error every poll.
	deadline := time.Now().Add(10 * time.Second)
	for !strings.Contains(stderr.String(), "watcher stopped") {
		if time.Now().After(deadline) {
			t.Fatalf("watcher never reported stopping; stderr:\n%s", stderr.String())
		}
		time.Sleep(25 * time.Millisecond)
	}
	f, err := os.OpenFile(csvPath, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("2,2\n3,3\n"); err != nil {
		t.Fatal(err)
	}
	f.Close()
	time.Sleep(250 * time.Millisecond) // ~10 polls of a live watcher
	if got := strings.Count(stderr.String(), "watcher stopped"); got != 1 {
		t.Fatalf("watcher stop logged %d times, want once; stderr:\n%s", got, stderr.String())
	}
	stats := getJSON(t, base+"/stats")
	if stats["errors"].(float64) != 0 || stats["appends"].(float64) != 0 {
		t.Fatalf("stopped watcher still hitting the service: %v", stats)
	}
	if err := shutdown(); err != nil {
		t.Fatalf("graceful shutdown: %v", err)
	}
}

// TestDaemonWatchStableTail: a final row with no trailing newline is
// ingested once the file has been unchanged for -watch-tail-polls polls,
// and tailing continues cleanly afterwards.
func TestDaemonWatchStableTail(t *testing.T) {
	dir := t.TempDir()
	csvPath := filepath.Join(dir, "w.csv")
	// The last row has no newline and never gets one.
	if err := os.WriteFile(csvPath, []byte("A,B\n1,1\n2,2"), 0o644); err != nil {
		t.Fatal(err)
	}
	base, shutdown := bootDaemon(t, []string{
		"-addr", "127.0.0.1:0", "-watch", "w=" + csvPath, "-watch-interval", "25ms",
		"-watch-tail-polls", "3"})
	// Register ingested the full file (including the unterminated row) at
	// load time, so rows start at 2; the watcher's stable-tail path must not
	// double-ingest or mangle anything.
	waitFor := func(wantRows float64, what string) {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for {
			info := getJSON(t, base+"/datasets")["datasets"].([]any)[0].(map[string]any)
			if info["rows"] == wantRows {
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("%s: %v", what, info)
			}
			time.Sleep(25 * time.Millisecond)
		}
	}
	waitFor(2, "initial load")

	// Append a complete row plus an unterminated one. The complete row lands
	// immediately; the unterminated "4,4" must land after ~3 stable polls
	// even though its newline never comes.
	f, err := os.OpenFile(csvPath, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("\n3,3\n4,4"); err != nil {
		t.Fatal(err)
	}
	f.Close()
	waitFor(4, "stable unterminated tail never ingested")

	// The stream continues: later complete rows still land exactly once.
	f, err = os.OpenFile(csvPath, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("\n5,5\n"); err != nil {
		t.Fatal(err)
	}
	f.Close()
	waitFor(5, "row after stable-tail ingestion lost")
	stats := getJSON(t, base+"/stats")
	if skipped, ok := stats["skipped_lines"].(map[string]any); ok && skipped["w"] != nil {
		t.Fatalf("stable-tail path dropped lines: %v", stats)
	}
	if err := shutdown(); err != nil {
		t.Fatalf("graceful shutdown: %v", err)
	}
}

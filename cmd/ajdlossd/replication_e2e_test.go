package main

import (
	"bytes"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestReplicationKillPrimary is the replication acceptance test: a durable
// primary, a follower tailing it, and a router over both. The primary is
// SIGKILLed mid-append; the router must keep answering reads from the
// follower, and once the primary restarts over the same -data the follower
// must converge to byte-identical /v1/{ns}/batch responses.
func TestReplicationKillPrimary(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns child processes")
	}
	dir := t.TempDir()
	dataDir := filepath.Join(dir, "data")
	csv := filepath.Join(dir, "block.csv")
	var rows strings.Builder
	rows.WriteString("A,B,C\n")
	for c := 1; c <= 3; c++ {
		for a := 1; a <= 2; a++ {
			for b := 1; b <= 2; b++ {
				fmt.Fprintf(&rows, "%d,%d,%d\n", 10*c+a, 100*c+b, c)
			}
		}
	}
	if err := os.WriteFile(csv, []byte(rows.String()), 0o644); err != nil {
		t.Fatal(err)
	}

	primaryURL, killPrimary := childDaemon(t, "-data", dataDir, "-load", "block="+csv)
	// The primary must come back on the same address after the kill — the
	// follower and the router hold its URL.
	primaryAddr := strings.TrimPrefix(primaryURL, "http://")

	followerURL, killFollower := childDaemon(t, "-follow", primaryURL, "-follow-interval", "100ms")
	defer killFollower()
	routerURL, killRouter := childDaemon(t, "-route", primaryURL+","+followerURL)
	defer killRouter()

	batchBody := []byte(`{"dataset":"block","queries":[
		{"kind":"entropy","attrs":["A","B","C"]},
		{"kind":"mi","a":["A"],"b":["B"]},
		{"kind":"distinct","attrs":["A","B","C"]}]}`)
	batchOf := func(base string) ([]byte, int) {
		resp, err := http.Post(base+"/v1/default/batch", "application/json", bytes.NewReader(batchBody))
		if err != nil {
			return nil, 0
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		return buf.Bytes(), resp.StatusCode
	}
	waitConverged := func(stage string) []byte {
		t.Helper()
		deadline := time.Now().Add(30 * time.Second)
		var p, f []byte
		for time.Now().Before(deadline) {
			var ps, fs int
			p, ps = batchOf(primaryURL)
			f, fs = batchOf(followerURL)
			if ps == 200 && fs == 200 && bytes.Equal(p, f) {
				return p
			}
			time.Sleep(100 * time.Millisecond)
		}
		t.Fatalf("%s: follower never converged\nprimary:  %s\nfollower: %s", stage, p, f)
		return nil
	}

	// Seed some acked appends, then require convergence.
	for i := 0; i < 5; i++ {
		body := fmt.Sprintf("%d,%d,%d\n", 500+i, 600+i, 5)
		httpPostBody(t, primaryURL+"/v1/default/datasets/block/append", "text/csv", []byte(body))
	}
	waitConverged("before kill")

	// Direct writes to the follower are refused with the typed redirect.
	resp, err := http.Post(followerURL+"/v1/default/datasets/block/append", "text/csv", strings.NewReader("1,2,3\n"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMisdirectedRequest {
		t.Fatalf("append to follower: status %d, want 421", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Ajdloss-Primary"); got != primaryURL {
		t.Fatalf("421 names primary %q, want %q", got, primaryURL)
	}

	// Kill the primary mid-append: appenders hammer it, the kill lands while
	// they run, and everything from the kill onward is allowed to fail.
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				body := fmt.Sprintf("%d,%d,%d\n", 1000+10*g+i, 2000+10*g+i, 7+g)
				resp, err := http.Post(primaryURL+"/v1/default/datasets/block/append", "text/csv", strings.NewReader(body))
				if err != nil {
					return // the kill landed
				}
				resp.Body.Close()
			}
		}(g)
	}
	time.Sleep(300 * time.Millisecond)
	killPrimary()
	close(stop)
	wg.Wait()

	// With the primary dead, reads through the router fail over to the
	// follower: both a proxied dataset route and a batch must still answer.
	if body, status := batchOf(routerURL); status != 200 {
		t.Fatalf("router batch with primary dead: status %d: %s", status, body)
	}
	schemaResp, err := http.Get(routerURL + "/v1/default/datasets/block/schema")
	if err != nil {
		t.Fatal(err)
	}
	schemaResp.Body.Close()
	if schemaResp.StatusCode != 200 {
		t.Fatalf("router schema read with primary dead: status %d", schemaResp.StatusCode)
	}

	// Restart the primary on the same address over the same -data; the
	// follower (still tailing the same URL) must converge to byte-identical
	// batch responses with the recovered state.
	_, killPrimary2 := childDaemon(t, "-addr", primaryAddr, "-data", dataDir, "-load", "block="+csv)
	defer killPrimary2()
	converged := waitConverged("after primary restart")

	// The router now answers with those same bytes no matter which node the
	// ring picks.
	if body, status := batchOf(routerURL); status != 200 || !bytes.Equal(body, converged) {
		t.Fatalf("router batch after recovery: status %d\n got %s\nwant %s", status, body, converged)
	}

	// A write through the router lands on the primary even if the ring owner
	// is the follower (the router follows the 421 redirect), and the follower
	// then mirrors it.
	out := httpPostBody(t, routerURL+"/v1/default/datasets/block/append", "text/csv", []byte("9991,9992,9\n"))
	if !bytes.Contains(out, []byte(`"appended": 1`)) {
		t.Fatalf("append through router: %s", out)
	}
	waitConverged("after routed append")
}

// Command ajdlossd is the long-running concurrent analysis daemon: it keeps
// registered CSV datasets warm (the columnar group-count engine's memoized
// partitions and entropies survive across requests) and serves the full
// analysis surface over HTTP as JSON — core.Analyze reports, schema
// discovery, and entropy/MI/CMI queries — with identical concurrent requests
// coalesced to one computation and finished results held in a bounded LRU
// cache.
//
// Usage:
//
//	ajdlossd [-addr :8347] [-cache 256] [-load name=path.csv ...]
//	         [-watch name=path.csv ...] [-watch-interval 2s]
//
// -watch loads a dataset like -load and then tails the file by byte offset:
// complete new lines are appended to the live dataset (a partially flushed
// line waits for its newline). Appends are idempotent (existing rows are
// skipped), so a producer can keep appending lines to the CSV and the
// daemon streams them in without a restart or an engine rebuild — each
// absorbed batch bumps the dataset's generation, visible in every response.
// Lines the watcher has to drop (wrong field count, permanently unparseable,
// or lost to a deterministically failing chunk) are counted and exposed per
// dataset as "skipped_lines" in /stats, not just logged.
//
// Endpoints (see internal/service.NewHandler):
//
//	GET    /healthz
//	GET    /stats
//	GET    /datasets
//	POST   /datasets?name=X[&noheader=1]      (CSV request body)
//	POST   /datasets/{name}/append[?header=1] (CSV or JSON rows body)
//	DELETE /datasets/{name}
//	GET    /analyze?dataset=X&schema=A,B|B,C
//	GET    /discover?dataset=X[&target=0.01][&maxsep=1]
//	GET    /entropy?dataset=X&attrs=A,B | &a=A&b=B[&given=C]
//	POST   /batch                             (JSON: many queries, one snapshot)
//
// The daemon shuts down gracefully on SIGINT/SIGTERM: in-flight requests
// drain (up to a timeout) before the process exits.
package main

import (
	"bytes"
	"context"
	"encoding/csv"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"ajdloss/internal/service"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout, os.Stderr, nil); err != nil {
		fmt.Fprintln(os.Stderr, "ajdlossd:", err)
		os.Exit(1)
	}
}

// preloadFlag collects repeated -load name=path.csv pairs.
type preloadFlag []string

func (p *preloadFlag) String() string     { return strings.Join(*p, ",") }
func (p *preloadFlag) Set(v string) error { *p = append(*p, v); return nil }

// run starts the daemon and blocks until ctx is cancelled (signal) or the
// listener fails. Log lines go to stderr; the single "listening" line goes
// to stdout so scripts can scrape the bound address. ready, if non-nil, is
// invoked with the bound address once the server accepts connections (the
// tests use it; main passes nil).
func run(ctx context.Context, args []string, stdout, stderr io.Writer, ready func(net.Addr)) error {
	fs := flag.NewFlagSet("ajdlossd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", ":8347", "listen address")
	cacheSize := fs.Int("cache", 256, "result cache capacity (entries; 0 disables)")
	drain := fs.Duration("drain", 10*time.Second, "graceful-shutdown drain timeout")
	var loads, watches preloadFlag
	fs.Var(&loads, "load", "preload dataset as name=path.csv (repeatable)")
	fs.Var(&watches, "watch", "like -load, then poll the file and stream new rows in (repeatable)")
	watchEvery := fs.Duration("watch-interval", 2*time.Second, "poll interval for -watch files")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if len(watches) > 0 && *watchEvery <= 0 {
		return fmt.Errorf("-watch-interval must be positive, got %v", *watchEvery)
	}

	svc := service.New(*cacheSize)
	load := func(flagName, spec string) (name, path string, err error) {
		name, path, ok := strings.Cut(spec, "=")
		if !ok || name == "" || path == "" {
			return "", "", fmt.Errorf("bad %s %q, want name=path.csv", flagName, spec)
		}
		f, err := os.Open(path)
		if err != nil {
			return "", "", err
		}
		d, err := svc.Registry().Register(name, f, true)
		f.Close()
		if err != nil {
			return "", "", fmt.Errorf("loading %s: %w", path, err)
		}
		fmt.Fprintf(stderr, "loaded dataset %q: %d rows over %s\n",
			name, d.Rel.N(), strings.Join(d.Rel.Attrs(), ","))
		return name, path, nil
	}
	for _, spec := range loads {
		if _, _, err := load("-load", spec); err != nil {
			return err
		}
	}
	// Watch goroutines exit on context cancellation; cancel before waiting so
	// an early return (listener failure) cannot hang behind a watcher that is
	// still ticking.
	watchCtx, stopWatches := context.WithCancel(ctx)
	var watchWG sync.WaitGroup
	defer func() {
		stopWatches()
		watchWG.Wait()
	}()
	for _, spec := range watches {
		// Snapshot the size *before* the load: everything up to here is
		// ingested by Register, so the tail starts at this offset — rows a
		// producer appends between the Stat and the load are re-read once
		// and deduped (appends are idempotent). Without the snapshot the
		// first tick would re-read and re-encode the entire file under the
		// dataset write lock just to add zero rows.
		var start int64
		if _, p, ok := strings.Cut(spec, "="); ok {
			if fi, err := os.Stat(p); err == nil {
				start = fi.Size()
			}
		}
		name, path, err := load("-watch", spec)
		if err != nil {
			return err
		}
		watchWG.Add(1)
		go func() {
			defer watchWG.Done()
			watchLoop(watchCtx, svc, name, path, start, *watchEvery, stderr)
		}()
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: service.NewHandler(svc)}
	fmt.Fprintf(stdout, "ajdlossd listening on http://%s\n", ln.Addr())
	if ready != nil {
		ready(ln.Addr())
	}

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	fmt.Fprintln(stderr, "ajdlossd: shutting down...")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}

// watchLoop tails path from the given starting offset and streams new rows
// of the CSV file into the live dataset. It tracks the byte offset of
// ingested complete lines and reads only the tail, cut at the last newline —
// so each batch costs O(new bytes), not O(file), and a torn (partially
// flushed) final line is never parsed: even when a truncated record happens
// to have the right arity it stays on disk until its newline arrives. If the
// file shrinks, or the byte before the tail is no longer a newline (a
// mid-line start snapshot, or an atomic replacement by equal-or-larger
// content — best-effort: a replacement that coincidentally keeps a newline
// there goes unnoticed until the next size change), ingestion restarts from
// the top; appends are idempotent, so re-reads only cost duplicate
// detection.
//
// A chunk that fails to parse is retried for a few ticks (a quoted field
// containing a newline can make the cut point land mid-record, which heals
// once the rest of the record is flushed) and then skipped: a permanently
// malformed line must not wedge the watcher forever while valid rows pile up
// behind it.
func watchLoop(ctx context.Context, svc *service.Service, name, path string, offset int64, every time.Duration, stderr io.Writer) {
	// parse retries remaining for the chunk at the current offset before it
	// is skipped as permanently malformed.
	const parseRetries = 3
	retries := parseRetries
	ticker := time.NewTicker(every)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
		}
		fi, err := os.Stat(path)
		if err != nil {
			fmt.Fprintf(stderr, "watch %q: %v\n", path, err)
			continue
		}
		if fi.Size() < offset {
			fmt.Fprintf(stderr, "watch %q: file shrank, re-reading from the top\n", path)
			offset = 0
		}
		if fi.Size() == offset {
			continue
		}
		f, err := os.Open(path)
		if err != nil {
			fmt.Fprintf(stderr, "watch %q: %v\n", path, err)
			continue
		}
		// Sentinel: the byte just before the tail must still be a newline.
		// It is not one when the start snapshot landed mid-line (producer
		// was writing during startup) or when the file was atomically
		// replaced by equal-or-larger content — tailing from a stale offset
		// would then ingest partial-line fragments as phantom rows. Reset
		// and re-read from the top instead; appends are idempotent, so the
		// re-read only costs duplicate detection.
		if offset > 0 {
			var nl [1]byte
			if _, err := f.ReadAt(nl[:], offset-1); err != nil || nl[0] != '\n' {
				fmt.Fprintf(stderr, "watch %q: content changed under the tail, re-reading from the top\n", path)
				offset = 0
			}
		}
		buf := make([]byte, fi.Size()-offset)
		_, err = f.ReadAt(buf, offset)
		f.Close()
		if err != nil {
			fmt.Fprintf(stderr, "watch %q: %v\n", path, err)
			continue
		}
		cut := bytes.LastIndexByte(buf, '\n')
		if cut < 0 {
			continue // no complete line yet
		}
		buf = buf[:cut+1]
		// Parse up to the first malformed record: the clean prefix is
		// ingested immediately (valid rows must not be hostage to a bad
		// line behind them), and only then is the failure handled.
		records, consumed, parseErr := parseCSVPrefix(buf)
		if len(records) > 0 {
			// Drop ragged rows rather than letting one of them fail the
			// whole batch (Dataset.Append is all-or-nothing). The schema is
			// immutable after registration, so reading the arity needs no
			// lock.
			if d, ok := svc.Registry().Get(name); ok {
				arity := len(d.Rel.Attrs())
				kept := records[:0]
				for _, rec := range records {
					if len(rec) == arity {
						kept = append(kept, rec)
					}
				}
				if dropped := len(records) - len(kept); dropped > 0 {
					svc.AddSkippedLines(name, int64(dropped))
					fmt.Fprintf(stderr, "watch %q: dropped %d rows with the wrong field count\n", path, dropped)
				}
				records = kept
			}
			// The chunk at offset 0 starts with the header row; later tails
			// are bare data lines.
			v, err := svc.Append(name, records, offset == 0)
			if err != nil {
				// Deterministic for these bytes (header mismatch, bad
				// encoding): skip the consumed prefix so the watcher is
				// never wedged. The chunk at offset 0 includes the header
				// row, which is not a lost data line.
				lost := len(records)
				if offset == 0 && lost > 0 {
					lost--
				}
				svc.AddSkippedLines(name, int64(lost))
				fmt.Fprintf(stderr, "watch %q: skipping %d bytes (rows lost): %v\n", path, consumed, err)
				offset += consumed
				retries = parseRetries
				continue
			}
			if v.Appended > 0 {
				fmt.Fprintf(stderr, "watch %q: appended %d rows to %q (now %d rows, generation %d)\n",
					path, v.Appended, name, v.Rows, v.Generation)
			}
		}
		if consumed > 0 {
			offset += consumed
			retries = parseRetries // progress: the next bad line gets a fresh budget
		}
		if parseErr == nil {
			continue
		}
		// The record now at offset is unparseable as flushed so far: maybe
		// torn (a quoted field spanning the cut heals once the rest is
		// written), maybe truly bad. Retry a few ticks, then skip one
		// physical line, so one malformed line cannot wedge the watcher
		// forever while valid rows pile up behind it.
		if retries--; retries > 0 {
			fmt.Fprintf(stderr, "watch %q: %v (will retry)\n", path, parseErr)
			continue
		}
		skip := int64(bytes.IndexByte(buf[consumed:], '\n') + 1)
		svc.AddSkippedLines(name, 1)
		fmt.Fprintf(stderr, "watch %q: skipping %d unparseable bytes (a row lost): %v\n", path, skip, parseErr)
		offset += skip
		retries = parseRetries
	}
}

// parseCSVPrefix reads CSV records from buf until the first parse error,
// returning the clean-prefix records, the byte count they consumed, and the
// error (nil when the whole buffer parsed; then the count covers trailing
// blank lines too). Records may be ragged — the caller filters by arity.
func parseCSVPrefix(buf []byte) ([][]string, int64, error) {
	cr := csv.NewReader(bytes.NewReader(buf))
	cr.FieldsPerRecord = -1
	var records [][]string
	var consumed int64
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			return records, int64(len(buf)), nil
		}
		if err != nil {
			return records, consumed, err
		}
		records = append(records, rec)
		consumed = cr.InputOffset()
	}
}

// Command ajdlossd is the long-running concurrent analysis daemon: it keeps
// registered CSV datasets warm (the columnar group-count engine's memoized
// partitions and entropies survive across requests) and serves the full
// analysis surface over HTTP as JSON — core.Analyze reports, schema
// discovery, and entropy/MI/CMI queries — with identical concurrent requests
// coalesced to one computation and finished results held in a bounded LRU
// cache.
//
// Usage:
//
//	ajdlossd [-addr :8347] [-cache 256] [-load name=path.csv ...]
//
// Endpoints (see internal/service.NewHandler):
//
//	GET    /healthz
//	GET    /stats
//	GET    /datasets
//	POST   /datasets?name=X[&noheader=1]      (CSV request body)
//	DELETE /datasets/{name}
//	GET    /analyze?dataset=X&schema=A,B|B,C
//	GET    /discover?dataset=X[&target=0.01][&maxsep=1]
//	GET    /entropy?dataset=X&attrs=A,B | &a=A&b=B[&given=C]
//
// The daemon shuts down gracefully on SIGINT/SIGTERM: in-flight requests
// drain (up to a timeout) before the process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"ajdloss/internal/service"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout, os.Stderr, nil); err != nil {
		fmt.Fprintln(os.Stderr, "ajdlossd:", err)
		os.Exit(1)
	}
}

// preloadFlag collects repeated -load name=path.csv pairs.
type preloadFlag []string

func (p *preloadFlag) String() string     { return strings.Join(*p, ",") }
func (p *preloadFlag) Set(v string) error { *p = append(*p, v); return nil }

// run starts the daemon and blocks until ctx is cancelled (signal) or the
// listener fails. Log lines go to stderr; the single "listening" line goes
// to stdout so scripts can scrape the bound address. ready, if non-nil, is
// invoked with the bound address once the server accepts connections (the
// tests use it; main passes nil).
func run(ctx context.Context, args []string, stdout, stderr io.Writer, ready func(net.Addr)) error {
	fs := flag.NewFlagSet("ajdlossd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", ":8347", "listen address")
	cacheSize := fs.Int("cache", 256, "result cache capacity (entries; 0 disables)")
	drain := fs.Duration("drain", 10*time.Second, "graceful-shutdown drain timeout")
	var loads preloadFlag
	fs.Var(&loads, "load", "preload dataset as name=path.csv (repeatable)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	svc := service.New(*cacheSize)
	for _, spec := range loads {
		name, path, ok := strings.Cut(spec, "=")
		if !ok || name == "" || path == "" {
			return fmt.Errorf("bad -load %q, want name=path.csv", spec)
		}
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		d, err := svc.Registry().Register(name, f, true)
		f.Close()
		if err != nil {
			return fmt.Errorf("loading %s: %w", path, err)
		}
		fmt.Fprintf(stderr, "loaded dataset %q: %d rows over %s\n",
			name, d.Rel.N(), strings.Join(d.Rel.Attrs(), ","))
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: service.NewHandler(svc)}
	fmt.Fprintf(stdout, "ajdlossd listening on http://%s\n", ln.Addr())
	if ready != nil {
		ready(ln.Addr())
	}

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	fmt.Fprintln(stderr, "ajdlossd: shutting down...")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}

// Command ajdlossd is the long-running concurrent analysis daemon: it keeps
// registered CSV datasets warm (the columnar group-count engine's memoized
// partitions and entropies survive across requests) and serves the full
// analysis surface over HTTP as JSON — core.Analyze reports, schema
// discovery, and entropy/MI/CMI queries — with identical concurrent requests
// coalesced to one computation and finished results held in a bounded LRU
// cache.
//
// Usage:
//
//	ajdlossd [-addr :8347] [-cache 256] [-load name=path.csv ...]
//	         [-watch name=path.csv ...] [-watch-interval 2s]
//	         [-data dir] [-wal-compact bytes] [-fsync]
//	         [-default-ns default] [-quota-datasets N] [-quota-rows N]
//	         [-follow http://primary:8347] [-follow-interval 500ms]
//	         [-route http://n1:8347,http://n2:8347] [-route-vnodes 128]
//
// -data enables durability: every dataset gets a binary columnar checkpoint
// plus an append-only CRC-checked WAL under the directory, appends are
// write-ahead-logged before their new view is published, an outgrown WAL is
// folded into a fresh checkpoint in the background (-wal-compact bounds
// it), and at boot every dataset is recovered to its exact pre-shutdown
// rows and generation — latest checkpoint, then WAL tail, a torn final
// record truncated. The default durability posture survives process death
// (SIGKILL); -fsync upgrades every WAL append to power-failure durability.
// POST /datasets/{name}/checkpoint forces a checkpoint; /stats shows
// wal_bytes and last_checkpoint per dataset.
//
// -watch loads a dataset like -load and then tails the file by byte offset:
// complete new lines are appended to the live dataset (a partially flushed
// line waits for its newline while the file is growing; once the file has
// been unchanged for -watch-tail-polls polls, a stable unterminated final
// line is ingested as-is). Appends are idempotent (existing rows are
// skipped), so a producer can keep appending lines to the CSV and the
// daemon streams them in without a restart or an engine rebuild — each
// absorbed batch bumps the dataset's generation, visible in every response.
// Lines the watcher has to drop (wrong field count, permanently unparseable,
// or lost to a deterministically failing chunk) are counted and exposed per
// dataset as "skipped_lines" in /stats, not just logged.
//
// Every dataset lives in a namespace. The versioned API scopes each route
// by namespace and describes itself — GET /v1/namespaces, per-dataset
// schemas at GET /v1/{ns}/datasets/{name}/schema, published JSON Schemas
// under GET /v1/schemas/ that POST /v1/{ns}/batch validates against. The
// legacy unversioned routes below are frozen aliases for the -default-ns
// namespace (byte-identical responses):
//
//	GET    /healthz
//	GET    /stats
//	GET    /datasets
//	POST   /datasets?name=X[&noheader=1]      (CSV request body)
//	POST   /datasets/{name}/append[?header=1] (CSV or JSON rows body)
//	DELETE /datasets/{name}
//	GET    /analyze?dataset=X&schema=A,B|B,C
//	GET    /discover?dataset=X[&target=0.01][&maxsep=1]
//	GET    /entropy?dataset=X&attrs=A,B | &a=A&b=B[&given=C]
//	POST   /batch                             (JSON: many queries, one snapshot)
//
// -quota-datasets and -quota-rows cap every namespace created after boot
// (0 = unlimited); requests over quota get HTTP 429 with a typed error.
// See internal/service.NewHandler for the full /v1 route table.
//
// -follow runs the daemon as a read-only follower of the primary at the
// given base URL: it bootstraps every dataset from the primary's live
// snapshots, then tails each WAL by generation cursor (re-bootstrapping on
// 410 when compaction outran the cursor) and serves reads from its own warm
// state. Writes are rejected with 421 naming the primary in the
// X-Ajdloss-Primary header; /stats grows a "replication" block with lag and
// applied counts. A follower is in-memory by definition — -data, -load, and
// -watch cannot be combined with it.
//
// -route runs a stateless routing tier instead of an engine: each
// {namespace}/{dataset} is consistent-hashed onto one node of the
// comma-separated list, single-dataset requests are proxied to the owner
// (reads fail over along the ring; writes answered 421 by a follower are
// retried once against its primary), GET /v1/{ns}/datasets merges the
// per-node listings, and a POST /v1/{ns}/batch whose body carries a
// "datasets" array fans out per dataset and merges the views.
//
// The daemon shuts down gracefully on SIGINT/SIGTERM: in-flight requests
// drain (up to a timeout) before the process exits.
package main

import (
	"bytes"
	"context"
	"encoding/csv"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"ajdloss/internal/engine"
	"ajdloss/internal/persist"
	"ajdloss/internal/replica"
	"ajdloss/internal/service"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout, os.Stderr, nil); err != nil {
		fmt.Fprintln(os.Stderr, "ajdlossd:", err)
		os.Exit(1)
	}
}

// preloadFlag collects repeated -load name=path.csv pairs.
type preloadFlag []string

func (p *preloadFlag) String() string     { return strings.Join(*p, ",") }
func (p *preloadFlag) Set(v string) error { *p = append(*p, v); return nil }

// run starts the daemon and blocks until ctx is cancelled (signal) or the
// listener fails. Log lines go to stderr; the single "listening" line goes
// to stdout so scripts can scrape the bound address. ready, if non-nil, is
// invoked with the bound address once the server accepts connections (the
// tests use it; main passes nil).
func run(ctx context.Context, args []string, stdout, stderr io.Writer, ready func(net.Addr)) error {
	fs := flag.NewFlagSet("ajdlossd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", ":8347", "listen address")
	cacheSize := fs.Int("cache", 256, "result cache capacity (entries; 0 disables)")
	drain := fs.Duration("drain", 10*time.Second, "graceful-shutdown drain timeout")
	var loads, watches preloadFlag
	fs.Var(&loads, "load", "preload dataset as name=path.csv (repeatable)")
	fs.Var(&watches, "watch", "like -load, then poll the file and stream new rows in (repeatable)")
	watchEvery := fs.Duration("watch-interval", 2*time.Second, "poll interval for -watch files")
	tailPolls := fs.Int("watch-tail-polls", 3, "unchanged polls before a watched file's unterminated final line is ingested")
	dataDir := fs.String("data", "", "durability directory: WAL + checkpoints per dataset, recovery at boot (empty = in-memory only)")
	walCompact := fs.Int64("wal-compact", persist.DefaultCompactAt, "WAL bytes that trigger background checkpoint compaction (<0 disables)")
	fsync := fs.Bool("fsync", false, "fsync the WAL on every append (power-failure durability)")
	procs := fs.Int("procs", 0, "cap engine worker parallelism at this many goroutines (0 = GOMAXPROCS)")
	eager := fs.Bool("eager-recovery", false, "decode every recovered dataset at boot instead of on first access")
	defaultNS := fs.String("default-ns", "default", "namespace the legacy unversioned routes alias")
	quotaDatasets := fs.Int64("quota-datasets", 0, "max datasets per namespace (0 = unlimited)")
	quotaRows := fs.Int64("quota-rows", 0, "max total rows per namespace (0 = unlimited)")
	follow := fs.String("follow", "", "run as a read-only follower of the primary at this base URL")
	followEvery := fs.Duration("follow-interval", 500*time.Millisecond, "sync interval in -follow mode")
	route := fs.String("route", "", "run as a stateless router over this comma-separated node URL list")
	routeVnodes := fs.Int("route-vnodes", 0, "virtual nodes per node on the -route hash ring (0 = default)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *procs < 0 {
		return fmt.Errorf("-procs must be >= 0, got %d", *procs)
	}
	if *cacheSize < 0 {
		return fmt.Errorf("-cache must be >= 0, got %d", *cacheSize)
	}
	if *quotaDatasets < 0 || *quotaRows < 0 {
		return fmt.Errorf("quotas must be >= 0, got -quota-datasets %d -quota-rows %d", *quotaDatasets, *quotaRows)
	}
	if err := service.ValidateNamespace(*defaultNS); err != nil {
		return fmt.Errorf("-default-ns: %w", err)
	}
	engine.SetMaxProcs(*procs)
	if len(watches) > 0 && *watchEvery <= 0 {
		return fmt.Errorf("-watch-interval must be positive, got %v", *watchEvery)
	}
	if len(watches) > 0 && *tailPolls <= 0 {
		return fmt.Errorf("-watch-tail-polls must be positive, got %d", *tailPolls)
	}

	// Router mode: no engine, no datasets — just the consistent-hash proxy.
	if *route != "" {
		if *follow != "" || *dataDir != "" || len(loads) > 0 || len(watches) > 0 {
			return fmt.Errorf("-route is stateless; it cannot be combined with -follow, -data, -load, or -watch")
		}
		var nodes []string
		for _, n := range strings.Split(*route, ",") {
			if n = strings.TrimSpace(n); n != "" {
				nodes = append(nodes, n)
			}
		}
		if len(nodes) == 0 {
			return fmt.Errorf("-route needs at least one node URL")
		}
		rt := replica.NewRouter(nodes, replica.RouterOptions{Vnodes: *routeVnodes})
		fmt.Fprintf(stderr, "routing over %d nodes: %s\n", len(nodes), strings.Join(nodes, ", "))
		return serveHTTP(ctx, *addr, rt.Handler(), *drain, stdout, stderr, ready)
	}
	if *follow != "" {
		if *dataDir != "" || len(loads) > 0 || len(watches) > 0 {
			return fmt.Errorf("-follow mirrors the primary's datasets; it cannot be combined with -data, -load, or -watch")
		}
		if *followEvery <= 0 {
			return fmt.Errorf("-follow-interval must be positive, got %v", *followEvery)
		}
	}

	svc := service.New(*cacheSize)
	svc.SetDefaultNamespace(*defaultNS)
	svc.Registry().SetDefaultQuotas(service.Quotas{MaxDatasets: *quotaDatasets, MaxRows: *quotaRows})
	durable := *dataDir != ""
	if durable {
		store, err := persist.Open(*dataDir, persist.Options{Sync: *fsync, CompactAt: *walCompact, DefaultNamespace: *defaultNS})
		if err != nil {
			return err
		}
		recovered, err := svc.EnableDurability(store)
		if err != nil {
			return fmt.Errorf("recovering datasets from %s: %w", *dataDir, err)
		}
		for _, r := range recovered {
			// Log datasets outside the default namespace as "ns/name", the
			// same qualified form /stats uses.
			qname := r.Name
			if r.Namespace != *defaultNS {
				qname = r.Namespace + "/" + r.Name
			}
			if r.Lazy {
				mode := "lazy: columns decode on first access"
				if *eager {
					mode = "materialized at boot (-eager-recovery)"
				}
				fmt.Fprintf(stderr, "recovered dataset %q: %d rows, generation %d (%s)\n",
					qname, r.Rows, r.Generation, mode)
				continue
			}
			fmt.Fprintf(stderr, "recovered dataset %q: %d rows, generation %d (checkpoint %d + %d WAL rows)\n",
				qname, r.Rows, r.Generation, r.CheckpointGeneration, r.ReplayedRows)
			if r.DroppedRecords > 0 {
				fmt.Fprintf(stderr, "recovered dataset %q: dropped %d unusable WAL records\n", qname, r.DroppedRecords)
			}
		}
		if *eager {
			if err := svc.MaterializeAll(); err != nil {
				return fmt.Errorf("materializing recovered datasets: %w", err)
			}
		}
	}
	load := func(flagName, spec string) (name, path string, recovered bool, err error) {
		name, path, ok := strings.Cut(spec, "=")
		if !ok || name == "" || path == "" {
			return "", "", false, fmt.Errorf("bad %s %q, want name=path.csv", flagName, spec)
		}
		// With -data, a dataset recovered at boot wins over its -load/-watch
		// spec: the durable state carries appends the file alone does not.
		if durable {
			if _, ok := svc.Registry().Get(name); ok {
				fmt.Fprintf(stderr, "dataset %q already recovered from -data; skipping %s of %s\n", name, flagName, path)
				return name, path, true, nil
			}
		}
		f, err := os.Open(path)
		if err != nil {
			return "", "", false, err
		}
		d, err := svc.Registry().Register(name, f, true)
		f.Close()
		if err != nil {
			return "", "", false, fmt.Errorf("loading %s: %w", path, err)
		}
		fmt.Fprintf(stderr, "loaded dataset %q: %d rows over %s\n",
			name, d.Rel.N(), strings.Join(d.Rel.Attrs(), ","))
		return name, path, false, nil
	}
	for _, spec := range loads {
		if _, _, _, err := load("-load", spec); err != nil {
			return err
		}
	}
	// Watch goroutines exit on context cancellation; cancel before waiting so
	// an early return (listener failure) cannot hang behind a watcher that is
	// still ticking.
	watchCtx, stopWatches := context.WithCancel(ctx)
	var watchWG sync.WaitGroup
	defer func() {
		stopWatches()
		watchWG.Wait()
	}()
	for _, spec := range watches {
		// Snapshot the size *before* the load: everything up to here is
		// ingested by Register, so the tail starts at this offset — rows a
		// producer appends between the Stat and the load are re-read once
		// and deduped (appends are idempotent). Without the snapshot the
		// first tick would re-read and re-encode the entire file under the
		// dataset write lock just to add zero rows. The replacement sentinel
		// (the bytes just before the tail) is captured at the same moment:
		// read any later and it could describe a file already swapped under
		// us, blinding the watcher to the swap.
		var start int64
		var sentinel []byte
		if _, p, ok := strings.Cut(spec, "="); ok {
			if fi, err := os.Stat(p); err == nil {
				start = fi.Size()
			}
			if start > 0 {
				if f, err := os.Open(p); err == nil {
					n := min(start, sentinelLen)
					buf := make([]byte, n)
					if _, err := f.ReadAt(buf, start-n); err == nil {
						sentinel = buf
					} else {
						start = 0
					}
					f.Close()
				} else {
					start = 0
				}
			}
		}
		name, path, recovered, err := load("-watch", spec)
		if err != nil {
			return err
		}
		if recovered {
			// The durable state covers an unknown prefix of the file (rows
			// written while the daemon was down are on disk but not in any
			// WAL). Re-read from the top once; appends are idempotent.
			start = 0
			sentinel = nil
		}
		watchWG.Add(1)
		go func() {
			defer watchWG.Done()
			watchLoop(watchCtx, svc, name, path, start, sentinel, *watchEvery, *tailPolls, stderr)
		}()
	}

	// Follower mode: mark the service read-only (writes 421 to the primary)
	// and start the replication tail alongside the HTTP server.
	if *follow != "" {
		svc.SetPrimary(*follow)
		f := replica.NewFollower(svc, *follow, replica.FollowerOptions{
			Interval: *followEvery,
			Logf:     func(format string, a ...any) { fmt.Fprintf(stderr, format+"\n", a...) },
		})
		followCtx, stopFollow := context.WithCancel(ctx)
		var followWG sync.WaitGroup
		followWG.Add(1)
		go func() {
			defer followWG.Done()
			_ = f.Run(followCtx)
		}()
		defer func() {
			stopFollow()
			followWG.Wait()
		}()
		fmt.Fprintf(stderr, "following primary at %s (sync every %v)\n", *follow, *followEvery)
	}

	if err := serveHTTP(ctx, *addr, service.NewHandler(svc), *drain, stdout, stderr, ready); err != nil {
		return err
	}
	if durable {
		// Quiesce the watchers first (idempotent with the deferred cleanup) —
		// a watcher appending after its dataset's final checkpoint would
		// defeat the point of the sweep. Then fold every dataset into a final
		// checkpoint so the next boot loads one file per dataset instead of
		// replaying a WAL tail. Failures are reported, not fatal: the WAL
		// already holds everything.
		stopWatches()
		watchWG.Wait()
		for _, err := range svc.CheckpointAll() {
			fmt.Fprintln(stderr, "ajdlossd: shutdown checkpoint:", err)
		}
	}
	return nil
}

// serveHTTP binds addr, serves h until ctx is cancelled, then drains
// gracefully. The "listening" line goes to stdout for scripts to scrape.
func serveHTTP(ctx context.Context, addr string, h http.Handler, drain time.Duration, stdout, stderr io.Writer, ready func(net.Addr)) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: h}
	fmt.Fprintf(stdout, "ajdlossd listening on http://%s\n", ln.Addr())
	if ready != nil {
		ready(ln.Addr())
	}

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	fmt.Fprintln(stderr, "ajdlossd: shutting down...")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}

// watchLoop tails path from the given starting offset and streams new rows
// of the CSV file into the live dataset. It tracks the byte offset of
// ingested complete lines and reads only the tail, cut at the last newline —
// so each batch costs O(new bytes), not O(file), and a torn (partially
// flushed) final line is not parsed while the file is still growing: even
// when a truncated record happens to have the right arity it stays on disk
// until its newline arrives — unless the file stops changing for tailPolls
// consecutive polls, at which point the stable unterminated final line is
// ingested (a writer that never terminates its last row must not starve it
// forever). If the file shrinks, or the bytes immediately before the tail no
// longer match the sentinel — the last ≤64 ingested bytes, remembered and
// verified on every poll, so an atomic replacement by equal-or-larger
// content is caught even when the byte at the boundary happens to be a
// newline — ingestion restarts from the top; appends are idempotent, so
// re-reads only cost duplicate detection. A watcher whose dataset is
// DELETEd stops outright (one line to stderr) instead of erroring on every
// poll forever.
//
// A chunk that fails to parse is retried for a few ticks (a quoted field
// containing a newline can make the cut point land mid-record, which heals
// once the rest of the record is flushed) and then skipped: a permanently
// malformed line must not wedge the watcher forever while valid rows pile up
// behind it.
func watchLoop(ctx context.Context, svc *service.Service, name, path string, offset int64, sentinel []byte, every time.Duration, tailPolls int, stderr io.Writer) {
	// parse retries remaining for the chunk at the current offset before it
	// is skipped as permanently malformed.
	const parseRetries = 3
	retries := parseRetries
	// sentinel is the last ≤64 bytes ending at offset, re-verified against
	// the file on every poll; the caller captured it when it snapshotted the
	// start offset. Without one, start from the top.
	if offset > 0 && len(sentinel) == 0 {
		offset = 0
	}
	// lastSize/stable track how many consecutive polls the file has been
	// unchanged, which is what lets a stable unterminated final line be
	// ingested after tailPolls polls.
	lastSize := int64(-1)
	stable := 0
	ticker := time.NewTicker(every)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
		}
		// A removed dataset cannot absorb appends again (re-registration
		// builds a new dataset that -watch knows nothing about): stop rather
		// than spam stderr on every poll forever.
		if _, ok := svc.Registry().Get(name); !ok {
			fmt.Fprintf(stderr, "watch %q: dataset %q was removed; watcher stopped\n", path, name)
			return
		}
		fi, err := os.Stat(path)
		if err != nil {
			fmt.Fprintf(stderr, "watch %q: %v\n", path, err)
			continue
		}
		if fi.Size() == lastSize {
			stable++
		} else {
			stable = 0
			lastSize = fi.Size()
		}
		if fi.Size() < offset {
			fmt.Fprintf(stderr, "watch %q: file shrank, re-reading from the top\n", path)
			offset = 0
			sentinel = nil
		}
		if fi.Size() == offset {
			continue
		}
		f, err := os.Open(path)
		if err != nil {
			fmt.Fprintf(stderr, "watch %q: %v\n", path, err)
			continue
		}
		// Sentinel: the bytes just before the tail must still be the bytes
		// that were ingested there. They are not when the start snapshot
		// landed mid-line (producer was writing during startup) or when the
		// file was atomically replaced by different equal-or-larger content —
		// tailing from a stale offset would then ingest partial-line
		// fragments or another file's rows as phantom rows. Comparing content
		// (not just a newline at the boundary) catches replacements whose
		// byte there coincidentally is a newline. Reset and re-read from the
		// top instead; appends are idempotent, so the re-read only costs
		// duplicate detection.
		if offset > 0 {
			check := make([]byte, len(sentinel))
			if _, err := f.ReadAt(check, offset-int64(len(sentinel))); err != nil || !bytes.Equal(check, sentinel) {
				fmt.Fprintf(stderr, "watch %q: content changed under the tail, re-reading from the top\n", path)
				offset = 0
				sentinel = nil
			}
		}
		buf := make([]byte, fi.Size()-offset)
		_, err = f.ReadAt(buf, offset)
		f.Close()
		if err != nil {
			fmt.Fprintf(stderr, "watch %q: %v\n", path, err)
			continue
		}
		if cut := bytes.LastIndexByte(buf, '\n'); cut+1 < len(buf) {
			// Unterminated final line. While the file keeps changing the
			// writer is mid-flush: wait for the newline. Once the file has
			// been unchanged for tailPolls polls the line is as complete as
			// it will ever get — ingest it instead of waiting forever.
			if stable < tailPolls {
				if cut < 0 {
					continue // no complete line yet
				}
				buf = buf[:cut+1]
			}
		}
		// Parse up to the first malformed record: the clean prefix is
		// ingested immediately (valid rows must not be hostage to a bad
		// line behind them), and only then is the failure handled.
		records, consumed, parseErr := parseCSVPrefix(buf)
		if len(records) > 0 {
			// Drop ragged rows rather than letting one of them fail the
			// whole batch (Dataset.Append is all-or-nothing). The schema is
			// immutable after registration, so reading the arity needs no
			// lock.
			if d, ok := svc.Registry().Get(name); ok {
				arity := len(d.Rel.Attrs())
				kept := records[:0]
				for _, rec := range records {
					if len(rec) == arity {
						kept = append(kept, rec)
					}
				}
				if dropped := len(records) - len(kept); dropped > 0 {
					svc.AddSkippedLines(name, int64(dropped))
					fmt.Fprintf(stderr, "watch %q: dropped %d rows with the wrong field count\n", path, dropped)
				}
				records = kept
			}
			// The chunk at offset 0 starts with the header row; later tails
			// are bare data lines.
			v, err := svc.Append(name, records, offset == 0)
			if err != nil {
				if errors.Is(err, service.ErrUnknownDataset) {
					// Removed between the top-of-tick check and the append.
					fmt.Fprintf(stderr, "watch %q: dataset %q was removed; watcher stopped\n", path, name)
					return
				}
				// Deterministic for these bytes (header mismatch, bad
				// encoding): skip the consumed prefix so the watcher is
				// never wedged. The chunk at offset 0 includes the header
				// row, which is not a lost data line.
				lost := len(records)
				if offset == 0 && lost > 0 {
					lost--
				}
				svc.AddSkippedLines(name, int64(lost))
				fmt.Fprintf(stderr, "watch %q: skipping %d bytes (rows lost): %v\n", path, consumed, err)
				sentinel = advanceSentinel(sentinel, buf[:consumed])
				offset += consumed
				retries = parseRetries
				continue
			}
			if v.Appended > 0 {
				fmt.Fprintf(stderr, "watch %q: appended %d rows to %q (now %d rows, generation %d)\n",
					path, v.Appended, name, v.Rows, v.Generation)
			}
		}
		if consumed > 0 {
			sentinel = advanceSentinel(sentinel, buf[:consumed])
			offset += consumed
			retries = parseRetries // progress: the next bad line gets a fresh budget
		}
		if parseErr == nil {
			continue
		}
		// The record now at offset is unparseable as flushed so far: maybe
		// torn (a quoted field spanning the cut heals once the rest is
		// written), maybe truly bad. Retry a few ticks, then skip one
		// physical line, so one malformed line cannot wedge the watcher
		// forever while valid rows pile up behind it.
		if retries--; retries > 0 {
			fmt.Fprintf(stderr, "watch %q: %v (will retry)\n", path, parseErr)
			continue
		}
		skip := int64(bytes.IndexByte(buf[consumed:], '\n') + 1)
		if skip == 0 {
			// No newline behind the bad record: a stable-but-malformed
			// unterminated tail. Skip all of it, or the watcher would retry
			// the same bytes forever.
			skip = int64(len(buf)) - consumed
		}
		svc.AddSkippedLines(name, 1)
		fmt.Fprintf(stderr, "watch %q: skipping %d unparseable bytes (a row lost): %v\n", path, skip, parseErr)
		sentinel = advanceSentinel(sentinel, buf[consumed:consumed+skip])
		offset += skip
		retries = parseRetries
	}
}

// sentinelLen is how many trailing ingested bytes the watcher remembers and
// re-verifies each poll to detect file replacement under the tail.
const sentinelLen = 64

// advanceSentinel returns the last ≤sentinelLen bytes of prev++chunk: the
// new sentinel after the watcher consumed chunk.
func advanceSentinel(prev, chunk []byte) []byte {
	if len(chunk) >= sentinelLen {
		return append([]byte(nil), chunk[len(chunk)-sentinelLen:]...)
	}
	combined := append(append([]byte(nil), prev...), chunk...)
	if len(combined) > sentinelLen {
		combined = combined[len(combined)-sentinelLen:]
	}
	return combined
}

// parseCSVPrefix reads CSV records from buf until the first parse error,
// returning the clean-prefix records, the byte count they consumed, and the
// error (nil when the whole buffer parsed; then the count covers trailing
// blank lines too). Records may be ragged — the caller filters by arity.
func parseCSVPrefix(buf []byte) ([][]string, int64, error) {
	cr := csv.NewReader(bytes.NewReader(buf))
	cr.FieldsPerRecord = -1
	var records [][]string
	var consumed int64
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			return records, int64(len(buf)), nil
		}
		if err != nil {
			return records, consumed, err
		}
		records = append(records, rec)
		consumed = cr.InputOffset()
	}
}

// Factorization as compression — the application from the paper's
// introduction ([22], Olteanu & Závodný): storing the projections of an
// acyclic schema instead of the universal relation saves space, and the
// paper's bounds certify how much data integrity the saving costs.
//
// The example builds a wide click-log relation with latent structure,
// assesses several candidate schemas (discovered and hand-written), and
// prints the compression/loss frontier: cells stored vs spurious tuples,
// with the Lemma 4.1 floor e^J − 1 certifying the minimum possible loss of
// each schema from its J-measure alone.
//
//	go run ./examples/compression
package main

import (
	"fmt"
	"log"

	"ajdloss"
	"ajdloss/internal/jointree"
	"ajdloss/internal/normalize"
)

func main() {
	r := clickLog()
	fmt.Printf("click log: %d tuples x %d attributes = %d cells\n\n",
		r.N(), r.Arity(), r.N()*r.Arity())

	// Candidate schemas: discovered by dissection at two thresholds, plus
	// the trivial schema as baseline.
	var schemas []*jointree.Schema
	schemas = append(schemas, ajdloss.MustSchema(r.Attrs()))
	for _, threshold := range []float64{1e-9, 0.02, 0.1} {
		cand, err := ajdloss.Dissect(r, ajdloss.DissectConfig{MaxSep: 1, Threshold: threshold})
		if err != nil {
			log.Fatal(err)
		}
		schemas = append(schemas, cand.Schema())
	}

	frontier, err := normalize.Frontier(r, schemas)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("compression/loss frontier (Pareto-optimal candidates):")
	fmt.Printf("%-42s %-8s %-10s %-12s %-12s\n", "schema", "cells", "compress", "rho", "e^J-1 floor")
	for _, rep := range frontier {
		fmt.Printf("%-42s %-8d %-10.3f %-12.6f %-12.6f\n",
			rep.Schema, rep.StoredCells, rep.Compression, rep.Loss.Rho, rep.RhoLower)
	}

	best := frontier[0]
	fmt.Printf("\nbest compression: %.3fx at rho = %.4f\n", best.Compression, best.Loss.Rho)
	fmt.Println("Lemma 4.1 reads the floor off J alone — no join ever evaluated;")
	fmt.Println("the measured rho respects it on every row.")
}

// clickLog builds Sessions(Session, User, Country, Page, Section): User
// determines Country, Page determines Section, and sessions tie them
// together — plus a handful of dirty rows.
func clickLog() *ajdloss.Relation {
	r := ajdloss.NewRelation("Session", "User", "Country", "Page", "Section")
	rng := ajdloss.NewRand(99)
	const users, countries, pages, sections = 25, 5, 40, 6
	countryOf := make([]ajdloss.Value, users+1)
	for u := 1; u <= users; u++ {
		countryOf[u] = ajdloss.Value(rng.IntN(countries) + 1)
	}
	sectionOf := make([]ajdloss.Value, pages+1)
	for p := 1; p <= pages; p++ {
		sectionOf[p] = ajdloss.Value(rng.IntN(sections) + 1)
	}
	session := ajdloss.Value(0)
	for u := 1; u <= users; u++ {
		visits := 6 + rng.IntN(8)
		session++
		for k := 0; k < visits; k++ {
			if rng.IntN(3) == 0 {
				session++ // user starts a new session
			}
			page := rng.IntN(pages) + 1
			r.Insert(ajdloss.Tuple{
				session, ajdloss.Value(u), countryOf[u],
				ajdloss.Value(page), sectionOf[page],
			})
		}
	}
	// Dirt: two rows with stale country.
	r.Insert(ajdloss.Tuple{1, 1, countryOf[1]%ajdloss.Value(countries) + 1, 1, sectionOf[1]})
	r.Insert(ajdloss.Tuple{2, 2, countryOf[2]%ajdloss.Value(countries) + 1, 2, sectionOf[2]})
	return r
}

// Functional dependencies and keys: the dependency layer below the paper's
// MVDs and AJDs (Lee 1987, Part I). The example profiles a small enrollment
// relation, discovers its (approximate) FDs and candidate keys, weakens an
// exact FD into an MVD (Fagin 1977), and shows that the resulting two-bag
// decomposition is lossless — connecting the FD world to the paper's
// loss machinery.
//
//	go run ./examples/fdkeys
package main

import (
	"fmt"
	"log"

	"ajdloss"
	"ajdloss/internal/fd"
)

func main() {
	r := enrollment()
	fmt.Printf("Enrollment(Student, Course, Lecturer, Room): %d tuples\n\n", r.N())

	// Discover minimal exact FDs with determinants of size ≤ 2.
	exact, err := ajdloss.DiscoverFDs(r, fd.DiscoverConfig{MaxLHS: 2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("exact FDs (minimal, |LHS| <= 2):")
	for _, d := range exact {
		fmt.Printf("  %v\n", d.FD)
	}

	// Approximate FDs tolerate a few dirty rows.
	approx, err := ajdloss.DiscoverFDs(r, fd.DiscoverConfig{MaxLHS: 1, MaxG3: 0.1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\napproximate FDs (g3 <= 0.1):")
	for _, d := range approx {
		if d.G3 > 0 {
			fmt.Printf("  %v   g3=%.3f  H(Y|X)=%.4f nats\n", d.FD, d.G3, d.H)
		}
	}

	keys, err := ajdloss.CandidateKeys(r, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncandidate keys: %v\n", keys)

	// Weaken Course → Lecturer into an MVD and decompose losslessly.
	f := ajdloss.FD{X: []string{"Course"}, Y: []string{"Lecturer"}}
	holds, err := ajdloss.FDHolds(r, f)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%v holds: %v\n", f, holds)
	schema := ajdloss.MustSchema(
		[]string{"Course", "Lecturer"},
		[]string{"Course", "Student", "Room"},
	)
	rep, err := ajdloss.Analyze(r, schema)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("decomposition %v:\n  J = %.6f nats, spurious = %d (lossless = %v)\n",
		schema, rep.J, rep.Loss.Spurious, rep.Lossless)
	fmt.Println("\nevery satisfied FD X -> Y yields the lossless two-bag AJD {XY, X(Ω\\Y)}:")
	fmt.Println("J = 0 and zero spurious tuples, as Theorem 2.1 demands.")
}

// enrollment builds the instance: Course determines Lecturer; the
// (Student, Course) pair determines the Room.
func enrollment() *ajdloss.Relation {
	r := ajdloss.NewRelation("Student", "Course", "Lecturer", "Room")
	type row struct{ s, c, l, rm ajdloss.Value }
	rows := []row{
		{1, 10, 7, 301}, {1, 11, 8, 302}, {2, 10, 7, 301},
		{2, 12, 9, 303}, {3, 11, 8, 302}, {3, 12, 9, 303},
		{4, 10, 7, 305}, {4, 11, 8, 302}, {5, 12, 9, 303},
	}
	for _, x := range rows {
		r.Insert(ajdloss.Tuple{x.s, x.c, x.l, x.rm})
	}
	return r
}

// Quickstart: measure the loss of an acyclic schema against a relation.
//
// This reproduces the paper's Example 4.1: the diagonal relation
// R = {(a₁,b₁),…,(a_N,b_N)} with the independence schema S = {{A},{B}}
// maximizes the loss — joining the projections yields the full N×N cross
// product — and meets the Lemma 4.1 lower bound with equality:
// J(S) = log N = log(1+ρ).
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"ajdloss"
)

func main() {
	const n = 100

	// The diagonal relation: A and B are perfectly correlated.
	r := ajdloss.Diagonal(n)

	// The schema that (wrongly) declares them independent.
	s := ajdloss.MustSchema([]string{"A"}, []string{"B"})

	rep, err := ajdloss.Analyze(r, s)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(rep)

	// The report carries every quantity the paper relates; Verify checks
	// the sound theorems (3.2, 4.1, 2.2) numerically.
	if err := rep.Verify(1e-9); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Lemma 4.1 is tight here: rho = %.0f = e^J - 1 = %.0f\n",
		rep.Loss.Rho, ajdloss.RhoLowerBound(rep.J))

	// Contrast with a lossless schema: the single bag {A,B}.
	lossless := ajdloss.MustSchema([]string{"A", "B"})
	rep2, err := ajdloss.Analyze(r, lossless)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("single-bag schema: J = %.6f, spurious = %d (lossless = %v)\n",
		rep2.J, rep2.Loss.Spurious, rep2.Lossless)
}

// MVD loss on the classic normalization example: an employee relation
// Employee(Name, Skill, Language) where every employee's skills and
// languages vary independently — Fagin's motivating MVD
// Name ↠ Skill | Language.
//
// The example shows the two loss measures tracking each other as the data
// drifts away from the dependency: we corrupt an exact instance with
// increasing numbers of ad-hoc tuples and report J = I(Skill;Language|Name)
// next to the measured spurious-tuple loss of the decomposition
// {Name,Skill}, {Name,Language}, together with the paper's bounds.
//
//	go run ./examples/mvdloss
package main

import (
	"fmt"
	"log"

	"ajdloss"
)

func main() {
	base := employees()
	schema, err := ajdloss.MVDSchema([]string{"Name"}, []string{"Skill"}, []string{"Language"})
	if err != nil {
		log.Fatal(err)
	}
	mvd := ajdloss.MVD{X: []string{"Name"}, Y: []string{"Skill"}, Z: []string{"Language"}}

	fmt.Println("Employee(Name, Skill, Language) vs MVD Name ->> Skill | Language")
	fmt.Printf("%-8s %-6s %-12s %-12s %-14s %-10s\n",
		"noise", "N", "J (nats)", "rho", "e^J-1 (lb)", "lossless")

	rng := ajdloss.NewRand(2024)
	for _, noise := range []int{0, 2, 5, 10, 25, 60} {
		r := base.Clone()
		injectNoise(rng, r, noise)
		j, err := ajdloss.JMeasureSchema(r, schema)
		if err != nil {
			log.Fatal(err)
		}
		loss, err := ajdloss.MVDLoss(r, mvd)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8d %-6d %-12.6f %-12.6f %-14.6f %-10v\n",
			noise, r.N(), j, loss.Rho, ajdloss.RhoLowerBound(j), loss.Spurious == 0)
	}
	fmt.Println("\nJ = 0 exactly when the MVD holds (Theorem 2.1); as noise grows,")
	fmt.Println("e^J - 1 lower-bounds the measured loss (Lemma 4.1).")
}

// employees builds an exact instance of the MVD: each employee has an
// independent set of skills and languages.
func employees() *ajdloss.Relation {
	r := ajdloss.NewRelation("Name", "Skill", "Language")
	type emp struct {
		name   ajdloss.Value
		skills []ajdloss.Value
		langs  []ajdloss.Value
	}
	people := []emp{
		{1, []ajdloss.Value{101, 102}, []ajdloss.Value{201}},
		{2, []ajdloss.Value{101}, []ajdloss.Value{201, 202, 203}},
		{3, []ajdloss.Value{103, 104, 105}, []ajdloss.Value{202}},
		{4, []ajdloss.Value{102, 105}, []ajdloss.Value{201, 203}},
		{5, []ajdloss.Value{106}, []ajdloss.Value{204}},
	}
	for _, p := range people {
		for _, s := range p.skills {
			for _, l := range p.langs {
				r.Insert(ajdloss.Tuple{p.name, s, l})
			}
		}
	}
	return r
}

// injectNoise inserts ad-hoc (Name, Skill, Language) combinations that break
// the independence of skills and languages within an employee.
func injectNoise(rng interface{ IntN(int) int }, r *ajdloss.Relation, k int) {
	added := 0
	for added < k {
		t := ajdloss.Tuple{
			ajdloss.Value(rng.IntN(5) + 1),
			ajdloss.Value(rng.IntN(8) + 101),
			ajdloss.Value(rng.IntN(5) + 201),
		}
		if r.Insert(t) {
			added++
		}
	}
}

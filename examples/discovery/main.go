// Schema discovery on a denormalized "orders" universal relation — the
// application that motivates the paper (Kenig et al., SIGMOD 2020): find an
// acyclic schema that approximately fits the data, using the J-measure as
// the fitness score, then use the paper's bounds to translate J into a
// guarantee on spurious tuples.
//
// The synthetic generator denormalizes three "clean" tables
//
//	Customer(Cust, City)                  — each customer lives in one city
//	Order(Cust, Item)                     — customers order items
//	Catalog(Item, Cat)                    — each item has one category
//
// into Orders(Cust, City, Item, Cat), then dirties a few rows (moved
// customers, recategorized items) so no dependency is exact.
//
//	go run ./examples/discovery
package main

import (
	"fmt"
	"log"

	"ajdloss"
)

func main() {
	r := ordersRelation()
	fmt.Printf("universal relation: %d tuples over Cust, City, Item, Cat\n\n", r.N())

	// Exact MVD mining first: with a strict threshold nothing survives the
	// dirt, so relax the threshold and rank by J.
	for _, threshold := range []float64{1e-9, 0.05} {
		cands, err := ajdloss.FindMVDs(r, 1, threshold)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("approximate MVDs at threshold %g: %d\n", threshold, len(cands))
		for i, c := range cands {
			if i == 3 {
				break
			}
			fmt.Printf("  %v ->> %v   J = %.6f\n", c.X, c.Groups, c.J)
		}
		fmt.Println()
	}

	// Full schema discovery: Chow-Liu then coarsen to a target J.
	const target = 0.05
	cand, err := ajdloss.Discover(r, target)
	if err != nil {
		log.Fatal(err)
	}
	rep, err := ajdloss.Analyze(r, cand.Schema())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("discovered schema (target J <= %g): %v\n", target, cand.Schema())
	fmt.Printf("  J            = %.6f nats\n", rep.J)
	fmt.Printf("  rho measured = %.6f (%d spurious tuples on %d)\n",
		rep.Loss.Rho, rep.Loss.Spurious, rep.N)
	fmt.Printf("  rho >= e^J-1 = %.6f (Lemma 4.1)\n", rep.RhoLower)
	if err := rep.Verify(1e-9); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nthe schema factors the wide table while bounding the redundancy")
	fmt.Println("reintroduced by joining the parts back together.")
}

func ordersRelation() *ajdloss.Relation {
	r := ajdloss.NewRelation("Cust", "City", "Item", "Cat")
	rng := ajdloss.NewRand(7)

	const customers, cities, items, cats = 40, 6, 30, 5
	cityOf := make([]ajdloss.Value, customers+1)
	for c := 1; c <= customers; c++ {
		cityOf[c] = ajdloss.Value(rng.IntN(cities) + 1)
	}
	catOf := make([]ajdloss.Value, items+1)
	for i := 1; i <= items; i++ {
		catOf[i] = ajdloss.Value(rng.IntN(cats) + 1)
	}
	// Each customer orders a handful of items; the wide row repeats the
	// customer's city and the item's category.
	for c := 1; c <= customers; c++ {
		orders := 5 + rng.IntN(6)
		for k := 0; k < orders; k++ {
			item := rng.IntN(items) + 1
			r.Insert(ajdloss.Tuple{
				ajdloss.Value(c), cityOf[c], ajdloss.Value(item), catOf[item],
			})
		}
	}
	// Dirt: a few rows recorded with a stale city or category.
	for k := 0; k < 3; k++ {
		c := rng.IntN(customers) + 1
		item := rng.IntN(items) + 1
		r.Insert(ajdloss.Tuple{
			ajdloss.Value(c),
			ajdloss.Value(rng.IntN(cities) + 1), // wrong city
			ajdloss.Value(item),
			ajdloss.Value(rng.IntN(cats) + 1), // wrong category
		})
	}
	return r
}

// Figure 1 reproduction at example scale: in the random relation model with
// d_C = 1, d_A = d_B = d and a fixed target loss ρ = 0.1, the sampled mutual
// information I(A_S;B_S) concentrates on log(1+ρ) from below as d grows
// (the paper's only data figure; its y-range 0.094..0.0955 is in nats —
// ln(1.1) ≈ 0.09531).
//
//	go run ./examples/figure1
//
// The full-scale sweep (d up to 1000, as in the paper) is
// `go run ./cmd/figures -exp figure1`.
package main

import (
	"fmt"
	"log"
	"math"
	"strings"

	"ajdloss/internal/experiments"
)

func main() {
	cfg := experiments.Figure1Config{
		Ds:    []int{50, 100, 200, 400},
		Rho:   0.1,
		Seeds: 5,
		Seed:  1,
	}
	points, err := experiments.Figure1Points(cfg)
	if err != nil {
		log.Fatal(err)
	}
	target := math.Log1p(cfg.Rho)
	fmt.Printf("target: log(1+rho) = %.6f nats\n\n", target)
	fmt.Printf("%-6s %-9s %-10s %-10s  %s\n", "d", "eta", "I(A;B)", "gap", "")
	for _, p := range points {
		gap := math.Log1p(p.RhoBar) - p.MI
		fmt.Printf("%-6d %-9d %-10.6f %-10.6f  %s\n", p.D, p.Eta, p.MI, gap, bar(gap))
	}
	fmt.Println("\nthe gap column shrinking down the table is the Figure 1 shape:")
	fmt.Println("the scatter tightens onto log(1+rho) as the database grows.")
}

// bar renders the gap magnitude as a crude terminal sparkline.
func bar(gap float64) string {
	n := int(gap * 20000)
	if n < 0 {
		n = 0
	}
	if n > 60 {
		n = 60
	}
	return strings.Repeat("#", n)
}

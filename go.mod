module ajdloss

go 1.22

package ajdloss

// Property-based parity harness for streaming appends: testing/quick draws
// random relations and random append-batch sequences, and after every batch
// the incrementally maintained engine must agree *exactly* — group counts,
// memoized entropies, FD satisfaction — with a from-scratch rebuild over the
// concatenated rows. The workload is warmed and re-queried between batches,
// so the memoized groupings are genuinely maintained mid-stream, never
// rebuilt cold.

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"ajdloss/internal/fd"
	"ajdloss/internal/infotheory"
	"ajdloss/internal/relation"
	"ajdloss/internal/schemagen"
)

// appendScenario is one random streaming scenario: a base relation plus a
// sequence of append batches over a small random schema.
type appendScenario struct {
	Arity   int
	Domain  int
	Base    []relation.Tuple
	Batches [][]relation.Tuple
}

// Generate implements quick.Generator. Schemas stay small (arity ≤ 4) so the
// harness can afford to check every attribute subset after every batch.
func (appendScenario) Generate(r *rand.Rand, _ int) reflect.Value {
	s := appendScenario{Arity: 2 + r.Intn(3), Domain: 2 + r.Intn(3)}
	draw := func(n int) []relation.Tuple {
		rows := make([]relation.Tuple, n)
		for i := range rows {
			t := make(relation.Tuple, s.Arity)
			for c := range t {
				t[c] = relation.Value(r.Intn(s.Domain) + 1)
			}
			rows[i] = t
		}
		return rows
	}
	s.Base = draw(1 + r.Intn(25))
	for b := 1 + r.Intn(4); b > 0; b-- {
		s.Batches = append(s.Batches, draw(r.Intn(12))) // empty batches allowed
	}
	return reflect.ValueOf(s)
}

// subsets returns every non-empty subset of attrs.
func subsets(attrs []string) [][]string {
	var out [][]string
	for mask := 1; mask < 1<<len(attrs); mask++ {
		var sub []string
		for i, a := range attrs {
			if mask&(1<<i) != 0 {
				sub = append(sub, a)
			}
		}
		out = append(out, sub)
	}
	return out
}

func TestQuickAppendParity(t *testing.T) {
	property := func(s appendScenario) bool {
		attrs := schemagen.AttrNames(s.Arity)
		subs := subsets(attrs)
		streamed := relation.FromRows(attrs, s.Base)
		// Warm every subset grouping and entropy so each batch has a full
		// memo to maintain.
		query := func(rel *relation.Relation) ([][]int, []float64, []bool) {
			counts := make([][]int, len(subs))
			ents := make([]float64, len(subs))
			for i, sub := range subs {
				c, err := rel.GroupCounts(sub...)
				if err != nil {
					t.Fatal(err)
				}
				counts[i] = c
				h, err := infotheory.Entropy(rel, sub...)
				if err != nil {
					t.Fatal(err)
				}
				ents[i] = h
			}
			var holds []bool
			for _, x := range attrs {
				for _, y := range attrs {
					if x == y {
						continue
					}
					ok, err := fd.Holds(rel, fd.FD{X: []string{x}, Y: []string{y}})
					if err != nil {
						t.Fatal(err)
					}
					holds = append(holds, ok)
				}
			}
			return counts, ents, holds
		}
		query(streamed)
		for bi, batch := range s.Batches {
			if _, err := streamed.Append(batch); err != nil {
				t.Fatal(err)
			}
			rebuilt := relation.FromRows(attrs, streamed.Rows())
			gotC, gotH, gotF := query(streamed)
			wantC, wantH, wantF := query(rebuilt)
			for i := range subs {
				if !reflect.DeepEqual(gotC[i], wantC[i]) {
					t.Logf("batch %d, subset %v: counts %v vs rebuild %v", bi, subs[i], gotC[i], wantC[i])
					return false
				}
				// Incremental and rebuilt engines see counts in the same
				// group order, so the entropies are bit-identical.
				if gotH[i] != wantH[i] {
					t.Logf("batch %d, subset %v: entropy %v vs rebuild %v", bi, subs[i], gotH[i], wantH[i])
					return false
				}
			}
			if !reflect.DeepEqual(gotF, wantF) {
				t.Logf("batch %d: fd.Holds %v vs rebuild %v", bi, gotF, wantF)
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{
		MaxCount: 250, // acceptance floor is 200 random append sequences
		Rand:     rand.New(rand.NewSource(20230612)),
	}
	if err := quick.Check(property, cfg); err != nil {
		t.Fatal(err)
	}
}
